#include "algebra/reference_eval.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"
#include "text/tokenizer.h"

namespace tix::algebra {

namespace {

/// Normalized phrase terms, aligned with predicate.phrases.
std::vector<std::vector<std::string>> NormalizePhrases(
    const storage::Database& db, const IrPredicate& predicate) {
  std::vector<std::vector<std::string>> out;
  out.reserve(predicate.phrases.size());
  for (const WeightedPhrase& phrase : predicate.phrases) {
    std::vector<std::string> terms;
    terms.reserve(phrase.terms.size());
    for (const std::string& term : phrase.terms) {
      terms.push_back(db.tokenizer().Normalize(term));
    }
    out.push_back(std::move(terms));
  }
  return out;
}

/// Finds phrase occurrences within one text node's token stream.
void ScanTextNode(const storage::NodeRecord& record,
                  const std::vector<text::Token>& tokens,
                  const std::vector<std::vector<std::string>>& phrases,
                  storage::NodeId node_id, SubtreeOccurrences* out) {
  // Map raw position -> term (holes where stopwords were removed).
  std::vector<const std::string*> by_pos(record.num_words, nullptr);
  for (const text::Token& token : tokens) {
    if (token.position < by_pos.size()) by_pos[token.position] = &token.term;
  }
  for (size_t phrase_index = 0; phrase_index < phrases.size();
       ++phrase_index) {
    const std::vector<std::string>& terms = phrases[phrase_index];
    if (terms.empty()) continue;
    if (by_pos.size() < terms.size()) continue;
    for (size_t p = 0; p + terms.size() <= by_pos.size(); ++p) {
      bool match = true;
      for (size_t k = 0; k < terms.size(); ++k) {
        if (by_pos[p + k] == nullptr || *by_pos[p + k] != terms[k]) {
          match = false;
          break;
        }
      }
      if (match) {
        ++out->counts[phrase_index];
        out->occurrences.push_back(TermOccurrence{
            static_cast<uint32_t>(phrase_index),
            record.start + static_cast<uint32_t>(p), node_id});
      }
    }
  }
}

}  // namespace

Result<SubtreeOccurrences> ScanSubtreeOccurrences(
    storage::Database* db, storage::NodeId node,
    const IrPredicate& predicate) {
  SubtreeOccurrences out;
  out.counts.assign(predicate.num_phrases(), 0);
  const std::vector<std::vector<std::string>> phrases =
      NormalizePhrases(*db, predicate);

  TIX_ASSIGN_OR_RETURN(const storage::NodeRecord root, db->GetNode(node));
  auto scan_one = [&](storage::NodeId id,
                      const storage::NodeRecord& record) -> Status {
    if (!record.is_text() || record.blob_length == 0) return Status::OK();
    TIX_ASSIGN_OR_RETURN(const std::string data, db->TextOf(record));
    ScanTextNode(record, db->tokenizer().Tokenize(data), phrases, id, &out);
    return Status::OK();
  };

  TIX_RETURN_IF_ERROR(scan_one(node, root));
  if (root.is_element()) {
    for (storage::NodeId id = node + 1; id < db->num_nodes(); ++id) {
      TIX_ASSIGN_OR_RETURN(const storage::NodeRecord record, db->GetNode(id));
      if (record.doc_id != root.doc_id || record.start >= root.end) break;
      TIX_RETURN_IF_ERROR(scan_one(id, record));
    }
  }
  std::sort(out.occurrences.begin(), out.occurrences.end(),
            [](const TermOccurrence& a, const TermOccurrence& b) {
              return a.word_pos < b.word_pos;
            });
  return out;
}

Result<double> ScoreNodeReference(storage::Database* db,
                                  storage::NodeId node,
                                  const IrPredicate& predicate,
                                  const Scorer& scorer) {
  TIX_ASSIGN_OR_RETURN(SubtreeOccurrences occurrences,
                       ScanSubtreeOccurrences(db, node, predicate));
  if (!scorer.is_complex()) {
    return scorer.Score(occurrences.counts);
  }
  TIX_ASSIGN_OR_RETURN(const storage::NodeRecord record, db->GetNode(node));
  ScoreContext context;
  context.counts = occurrences.counts;
  context.occurrences = occurrences.occurrences;
  context.total_children = record.num_children;
  context.element_start = record.start;
  context.element_end = record.end;
  if (record.is_element()) {
    TIX_ASSIGN_OR_RETURN(const std::vector<storage::NodeId> children,
                         db->ChildrenOf(node));
    for (storage::NodeId child : children) {
      TIX_ASSIGN_OR_RETURN(const SubtreeOccurrences child_occurrences,
                           ScanSubtreeOccurrences(db, child, predicate));
      if (child_occurrences.any()) ++context.relevant_children;
    }
  }
  return scorer.ScoreComplex(context);
}

Result<std::vector<ScoredNodeResult>> ReferenceScoreAllElements(
    storage::Database* db, const IrPredicate& predicate, const Scorer& scorer,
    storage::DocId doc) {
  std::vector<ScoredNodeResult> out;
  for (storage::NodeId id = 0; id < db->num_nodes(); ++id) {
    TIX_ASSIGN_OR_RETURN(const storage::NodeRecord record, db->GetNode(id));
    if (!record.is_element()) continue;
    if (doc != UINT32_MAX && record.doc_id != doc) continue;
    TIX_ASSIGN_OR_RETURN(SubtreeOccurrences occurrences,
                         ScanSubtreeOccurrences(db, id, predicate));
    if (!occurrences.any()) continue;
    ScoredNodeResult result;
    result.node = id;
    result.counts = occurrences.counts;
    TIX_ASSIGN_OR_RETURN(result.score,
                         ScoreNodeReference(db, id, predicate, scorer));
    out.push_back(std::move(result));
  }
  return out;
}

namespace {

Result<bool> NodeSatisfies(storage::Database* db, const PatternNode& pattern,
                           storage::NodeId id,
                           const storage::NodeRecord& record) {
  if (!record.is_element()) return false;
  if (pattern.tag().has_value() &&
      db->TagName(record.tag_id) != *pattern.tag()) {
    return false;
  }
  for (const Predicate& predicate : pattern.predicates()) {
    switch (predicate.kind) {
      case Predicate::Kind::kContentEquals: {
        TIX_ASSIGN_OR_RETURN(const std::string text, db->AllTextOf(id));
        if (std::string(Trim(text)) != predicate.value) return false;
        break;
      }
      case Predicate::Kind::kContentContainsWord: {
        TIX_ASSIGN_OR_RETURN(const std::string text, db->AllTextOf(id));
        const std::string needle = db->tokenizer().Normalize(predicate.value);
        bool found = false;
        for (const text::Token& token : db->tokenizer().Tokenize(text)) {
          if (token.term == needle) {
            found = true;
            break;
          }
        }
        if (!found) return false;
        break;
      }
      case Predicate::Kind::kAttributeEquals: {
        TIX_ASSIGN_OR_RETURN(const storage::AttributeList attrs,
                             db->AttributesOf(record));
        bool found = false;
        for (const xml::XmlAttribute& attr : attrs) {
          if (attr.name == predicate.name && attr.value == predicate.value) {
            found = true;
            break;
          }
        }
        if (!found) return false;
        break;
      }
    }
  }
  return true;
}

/// Candidate data nodes for `pattern` related to `anchor` by the
/// pattern's axis. `anchor == kInvalidNodeId` means the pattern root
/// (candidates anywhere in the database).
Result<std::vector<storage::NodeId>> Candidates(storage::Database* db,
                                                const PatternNode& pattern,
                                                storage::NodeId anchor) {
  std::vector<storage::NodeId> raw;
  if (anchor == storage::kInvalidNodeId) {
    if (pattern.tag().has_value()) {
      const storage::TagId tag = db->LookupTag(*pattern.tag());
      if (tag == text::kInvalidTermId) return raw;
      const std::vector<storage::NodeId>* nodes = db->ElementsWithTag(tag);
      if (nodes != nullptr) raw = *nodes;
    } else {
      for (storage::NodeId id = 0; id < db->num_nodes(); ++id) {
        raw.push_back(id);
      }
    }
  } else {
    TIX_ASSIGN_OR_RETURN(const storage::NodeRecord anchor_record,
                         db->GetNode(anchor));
    switch (pattern.axis()) {
      case Axis::kChild: {
        TIX_ASSIGN_OR_RETURN(raw, db->ChildrenOf(anchor));
        break;
      }
      case Axis::kDescendantOrSelf:
        raw.push_back(anchor);
        [[fallthrough]];
      case Axis::kDescendant: {
        for (storage::NodeId id = anchor + 1; id < db->num_nodes(); ++id) {
          TIX_ASSIGN_OR_RETURN(const storage::NodeRecord record,
                               db->GetNode(id));
          if (record.doc_id != anchor_record.doc_id ||
              record.start >= anchor_record.end) {
            break;
          }
          raw.push_back(id);
        }
        break;
      }
    }
  }
  std::vector<storage::NodeId> out;
  for (storage::NodeId id : raw) {
    TIX_ASSIGN_OR_RETURN(const storage::NodeRecord record, db->GetNode(id));
    TIX_ASSIGN_OR_RETURN(const bool ok, NodeSatisfies(db, pattern, id, record));
    if (ok) out.push_back(id);
  }
  return out;
}

Result<std::vector<Embedding>> MatchSub(storage::Database* db,
                                        const PatternNode* pattern,
                                        storage::NodeId bound) {
  std::vector<Embedding> results;
  results.push_back(Embedding{{pattern->label(), bound}});
  for (const auto& child : pattern->children()) {
    TIX_ASSIGN_OR_RETURN(const std::vector<storage::NodeId> candidates,
                         Candidates(db, *child, bound));
    std::vector<Embedding> child_bindings;
    for (storage::NodeId candidate : candidates) {
      TIX_ASSIGN_OR_RETURN(std::vector<Embedding> subs,
                           MatchSub(db, child.get(), candidate));
      for (Embedding& sub : subs) child_bindings.push_back(std::move(sub));
    }
    if (child_bindings.empty()) return std::vector<Embedding>{};
    std::vector<Embedding> next;
    next.reserve(results.size() * child_bindings.size());
    for (const Embedding& base : results) {
      for (const Embedding& extension : child_bindings) {
        Embedding combined = base;
        combined.insert(combined.end(), extension.begin(), extension.end());
        next.push_back(std::move(combined));
      }
    }
    results = std::move(next);
  }
  return results;
}

/// One node to place in a witness tree.
struct NodeSpec {
  storage::NodeId node = storage::kInvalidNodeId;
  std::optional<double> score;
  int label = 0;
};

/// Builds a containment tree over `nodes` (same document). Nodes must be
/// unique.
Result<ScoredTree> BuildContainmentTree(storage::Database* db,
                                        std::vector<NodeSpec> nodes) {
  struct Entry {
    storage::NodeId id;
    uint32_t start;
    uint32_t end;
    std::optional<double> score;
    int label;
  };
  std::vector<Entry> entries;
  entries.reserve(nodes.size());
  for (const NodeSpec& spec : nodes) {
    TIX_ASSIGN_OR_RETURN(const storage::NodeRecord record,
                         db->GetNode(spec.node));
    entries.push_back(
        Entry{spec.node, record.start, record.end, spec.score, spec.label});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.end > b.end;
  });

  ScoredTree tree;
  std::vector<ScoredTreeNode*> stack;
  for (const Entry& entry : entries) {
    while (!stack.empty()) {
      // Pop frames that do not contain this entry.
      const ScoredTreeNode* top = stack.back();
      TIX_ASSIGN_OR_RETURN(const storage::NodeRecord top_record,
                           db->GetNode(top->node()));
      if (entry.start >= top_record.end) {
        stack.pop_back();
      } else {
        break;
      }
    }
    auto scored = std::make_unique<ScoredTreeNode>(entry.id);
    if (entry.score.has_value()) scored->set_score(*entry.score);
    scored->set_matched_label(entry.label);
    ScoredTreeNode* inserted;
    if (stack.empty()) {
      if (!tree.empty()) {
        return Status::InvalidArgument(
            "containment tree has multiple roots; include a common ancestor");
      }
      tree.set_root(std::move(scored));
      inserted = tree.mutable_root();
    } else {
      inserted = stack.back()->AddChild(std::move(scored));
    }
    stack.push_back(inserted);
  }
  return tree;
}

}  // namespace

Result<std::vector<Embedding>> MatchPattern(storage::Database* db,
                                            const ScoredPatternTree& pattern) {
  if (pattern.root() == nullptr) {
    return Status::InvalidArgument("empty pattern tree");
  }
  TIX_ASSIGN_OR_RETURN(
      const std::vector<storage::NodeId> roots,
      Candidates(db, *pattern.root(), storage::kInvalidNodeId));
  std::vector<Embedding> out;
  for (storage::NodeId root : roots) {
    TIX_ASSIGN_OR_RETURN(std::vector<Embedding> embeddings,
                         MatchSub(db, pattern.root(), root));
    for (Embedding& embedding : embeddings) {
      out.push_back(std::move(embedding));
    }
  }
  return out;
}

Result<ScoredTreeCollection> ScoredSelection(storage::Database* db,
                                             const ScoredPatternTree& pattern) {
  TIX_ASSIGN_OR_RETURN(const std::vector<Embedding> embeddings,
                       MatchPattern(db, pattern));
  ScoredTreeCollection out;
  for (const Embedding& embedding : embeddings) {
    // Scores per label for this embedding.
    std::unordered_map<int, double> label_scores;
    for (const auto& [label, node] : embedding) {
      const PatternNode* pattern_node = pattern.FindLabel(label);
      if (pattern_node != nullptr && pattern_node->is_primary_ir()) {
        TIX_ASSIGN_OR_RETURN(
            const double score,
            ScoreNodeReference(db, node, *pattern_node->ir(),
                               *pattern_node->scorer()));
        label_scores[label] = score;
      }
    }
    for (const auto& [label, node] : embedding) {
      const PatternNode* pattern_node = pattern.FindLabel(label);
      if (pattern_node != nullptr && pattern_node->is_secondary_ir()) {
        auto it = label_scores.find(pattern_node->secondary_score()->source_label);
        label_scores[label] = it == label_scores.end() ? 0.0 : it->second;
      }
    }
    std::vector<NodeSpec> nodes;
    std::unordered_set<storage::NodeId> seen;
    for (const auto& [label, node] : embedding) {
      std::optional<double> score;
      auto it = label_scores.find(label);
      if (it != label_scores.end()) score = it->second;
      if (seen.insert(node).second) {
        nodes.push_back(NodeSpec{node, score, label});
      } else if (score.has_value()) {
        // ad* self-match: the same data node carries the IR score and
        // the IR label.
        for (NodeSpec& existing : nodes) {
          if (existing.node == node &&
              (!existing.score.has_value() || *existing.score < *score)) {
            existing.score = score;
            existing.label = label;
          }
        }
      }
    }
    TIX_ASSIGN_OR_RETURN(ScoredTree tree,
                         BuildContainmentTree(db, std::move(nodes)));
    out.push_back(std::move(tree));
  }
  return out;
}

Result<ScoredTreeCollection> ScoredProjection(
    storage::Database* db, const ScoredPatternTree& pattern,
    const std::vector<int>& projection_labels) {
  TIX_ASSIGN_OR_RETURN(const std::vector<Embedding> embeddings,
                       MatchPattern(db, pattern));
  if (pattern.root() == nullptr) {
    return Status::InvalidArgument("empty pattern tree");
  }
  const int root_label = pattern.root()->label();
  const std::unordered_set<int> retained(projection_labels.begin(),
                                         projection_labels.end());
  if (retained.count(root_label) == 0) {
    return Status::InvalidArgument(
        "projection list must include the pattern root label");
  }

  // Group (label, node) bindings by the root-label match.
  std::map<storage::NodeId, std::vector<std::pair<int, storage::NodeId>>>
      groups;
  for (const Embedding& embedding : embeddings) {
    storage::NodeId root_node = storage::kInvalidNodeId;
    for (const auto& [label, node] : embedding) {
      if (label == root_label) root_node = node;
    }
    TIX_CHECK(root_node != storage::kInvalidNodeId);
    auto& group = groups[root_node];
    group.insert(group.end(), embedding.begin(), embedding.end());
  }

  ScoredTreeCollection out;
  for (auto& [root_node, bindings] : groups) {
    std::sort(bindings.begin(), bindings.end());
    bindings.erase(std::unique(bindings.begin(), bindings.end()),
                   bindings.end());

    // Primary IR scores per (label, node).
    std::map<std::pair<int, storage::NodeId>, double> primary_scores;
    for (const auto& [label, node] : bindings) {
      const PatternNode* pattern_node = pattern.FindLabel(label);
      if (pattern_node != nullptr && pattern_node->is_primary_ir()) {
        TIX_ASSIGN_OR_RETURN(
            const double score,
            ScoreNodeReference(db, node, *pattern_node->ir(),
                               *pattern_node->scorer()));
        primary_scores[{label, node}] = score;
      }
    }

    // Node set to retain, with scores and labels.
    std::map<storage::NodeId, std::pair<std::optional<double>, int>>
        node_scores;
    for (const auto& [label, node] : bindings) {
      if (retained.count(label) == 0) continue;
      const PatternNode* pattern_node = pattern.FindLabel(label);
      std::optional<double> score;
      if (pattern_node != nullptr && pattern_node->is_primary_ir()) {
        score = primary_scores[{label, node}];
        // Zero-score IR matches are removed (Fig. 6).
        if (*score == 0.0) continue;
      } else if (pattern_node != nullptr && pattern_node->is_secondary_ir()) {
        const SecondaryScore& rule = *pattern_node->secondary_score();
        double aggregate = 0.0;
        bool first = true;
        for (const auto& [key, value] : primary_scores) {
          if (key.first != rule.source_label) continue;
          if (rule.aggregate == SecondaryScore::Aggregate::kSum) {
            aggregate += value;
          } else {
            aggregate = first ? value : std::max(aggregate, value);
          }
          first = false;
        }
        score = aggregate;
      }
      auto it = node_scores.find(node);
      if (it == node_scores.end()) {
        node_scores[node] = {score, label};
      } else if (score.has_value() && (!it->second.first.has_value() ||
                                       *it->second.first < *score)) {
        it->second = {score, label};
      }
    }
    if (node_scores.find(root_node) == node_scores.end()) continue;

    std::vector<NodeSpec> nodes;
    nodes.reserve(node_scores.size());
    for (const auto& [node, score_label] : node_scores) {
      nodes.push_back(NodeSpec{node, score_label.first, score_label.second});
    }
    TIX_ASSIGN_OR_RETURN(ScoredTree tree,
                         BuildContainmentTree(db, std::move(nodes)));
    out.push_back(std::move(tree));
  }
  return out;
}

namespace {

/// First node in the tree matched to `label`, else nullptr.
const ScoredTreeNode* FindLabelInTree(const ScoredTreeNode* node, int label) {
  if (node == nullptr) return nullptr;
  if (node->matched_label() == label) return node;
  for (const auto& child : node->children()) {
    if (const ScoredTreeNode* found = FindLabelInTree(child.get(), label)) {
      return found;
    }
  }
  return nullptr;
}

/// Highest score among nodes matched to `label` (0 when absent).
double MaxScoreOfLabel(const ScoredTreeNode* node, int label) {
  if (node == nullptr) return 0.0;
  double best =
      node->matched_label() == label ? node->score_or_zero() : 0.0;
  for (const auto& child : node->children()) {
    best = std::max(best, MaxScoreOfLabel(child.get(), label));
  }
  return best;
}

}  // namespace

Result<ScoredTreeCollection> ScoredJoin(storage::Database* db,
                                        const ScoredPatternTree& left,
                                        const ScoredPatternTree& right,
                                        const ScoredJoinSpec& spec) {
  TIX_ASSIGN_OR_RETURN(ScoredTreeCollection left_trees,
                       ScoredSelection(db, left));
  TIX_ASSIGN_OR_RETURN(ScoredTreeCollection right_trees,
                       ScoredSelection(db, right));

  // Tokenize the sim-label text of each side once.
  auto sim_terms = [&](const ScoredTreeCollection& trees, int label)
      -> Result<std::vector<std::vector<std::string>>> {
    std::vector<std::vector<std::string>> out;
    out.reserve(trees.size());
    for (const ScoredTree& tree : trees) {
      const ScoredTreeNode* node = FindLabelInTree(tree.root(), label);
      if (node == nullptr) {
        out.emplace_back();
        continue;
      }
      TIX_ASSIGN_OR_RETURN(const std::string text,
                           db->AllTextOf(node->node()));
      out.push_back(db->tokenizer().TokenizeToTerms(text));
    }
    return out;
  };
  TIX_ASSIGN_OR_RETURN(const std::vector<std::vector<std::string>> left_terms,
                       sim_terms(left_trees, spec.left_sim_label));
  TIX_ASSIGN_OR_RETURN(const std::vector<std::vector<std::string>> right_terms,
                       sim_terms(right_trees, spec.right_sim_label));

  ScoredTreeCollection out;
  for (size_t i = 0; i < left_trees.size(); ++i) {
    for (size_t j = 0; j < right_trees.size(); ++j) {
      const double similarity = ScoreSim(left_terms[i], right_terms[j]);
      if (!(similarity > spec.min_similarity)) continue;
      // Virtual product root (the paper's tix_prod_root).
      auto root = std::make_unique<ScoredTreeNode>(storage::kInvalidNodeId);
      double ir_score = similarity;
      if (spec.left_ir_label != 0) {
        ir_score = ScoreBar(
            similarity,
            MaxScoreOfLabel(left_trees[i].root(), spec.left_ir_label));
        if (ir_score == 0.0) continue;  // ScoreBar gates on relevance
      }
      root->set_score(ir_score);
      root->AddChild(left_trees[i].root()->Clone());
      root->AddChild(right_trees[j].root()->Clone());
      out.push_back(ScoredTree(std::move(root)));
    }
  }
  return out;
}

}  // namespace tix::algebra
