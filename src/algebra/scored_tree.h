#ifndef TIX_ALGEBRA_SCORED_TREE_H_
#define TIX_ALGEBRA_SCORED_TREE_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/macros.h"
#include "storage/node_record.h"

/// \file
/// The TIX data model (Definition 1 of the paper): scored data trees.
/// Nodes reference stored database nodes and carry an optional score —
/// null until the node is matched against a scored pattern tree's
/// IR-node. The score of a tree is the score of its root.

namespace tix::algebra {

/// One node of a scored data tree.
class ScoredTreeNode {
 public:
  explicit ScoredTreeNode(storage::NodeId node) : node_(node) {}
  TIX_DISALLOW_COPY_AND_ASSIGN(ScoredTreeNode);

  storage::NodeId node() const { return node_; }

  /// Score is null (nullopt) until an IR predicate assigns one.
  const std::optional<double>& score() const { return score_; }
  void set_score(double score) { score_ = score; }
  void clear_score() { score_.reset(); }
  double score_or_zero() const { return score_.value_or(0.0); }

  /// The pattern-node label this data node matched (0 when untracked).
  int matched_label() const { return matched_label_; }
  void set_matched_label(int label) { matched_label_ = label; }

  const std::vector<std::unique_ptr<ScoredTreeNode>>& children() const {
    return children_;
  }
  ScoredTreeNode* parent() const { return parent_; }

  ScoredTreeNode* AddChild(std::unique_ptr<ScoredTreeNode> child);
  ScoredTreeNode* AddChild(storage::NodeId node);

  /// Removes the child at `index`, reparenting nothing (the subtree is
  /// discarded). Used by reference Pick/Projection.
  void RemoveChild(size_t index);

  size_t SubtreeSize() const;

  /// Pre-order visit of this subtree.
  void PreOrder(const std::function<void(ScoredTreeNode&)>& fn);
  void PreOrderConst(
      const std::function<void(const ScoredTreeNode&)>& fn) const;

  /// Deep copy.
  std::unique_ptr<ScoredTreeNode> Clone() const;

  /// First node in the subtree referencing `node`, else nullptr.
  ScoredTreeNode* Find(storage::NodeId node);

 private:
  storage::NodeId node_;
  std::optional<double> score_;
  int matched_label_ = 0;
  std::vector<std::unique_ptr<ScoredTreeNode>> children_;
  ScoredTreeNode* parent_ = nullptr;
};

/// A scored data tree; the collection type of the TIX algebra is
/// std::vector<ScoredTree>.
class ScoredTree {
 public:
  ScoredTree() = default;
  explicit ScoredTree(std::unique_ptr<ScoredTreeNode> root)
      : root_(std::move(root)) {}
  ScoredTree(ScoredTree&&) noexcept = default;
  ScoredTree& operator=(ScoredTree&&) noexcept = default;
  TIX_DISALLOW_COPY_AND_ASSIGN(ScoredTree);

  const ScoredTreeNode* root() const { return root_.get(); }
  ScoredTreeNode* mutable_root() { return root_.get(); }
  void set_root(std::unique_ptr<ScoredTreeNode> root) {
    root_ = std::move(root);
  }

  bool empty() const { return root_ == nullptr; }

  /// Score of the tree = score of the root (Definition 1); 0 when null.
  double Score() const { return root_ ? root_->score_or_zero() : 0.0; }

  ScoredTree Clone() const {
    return root_ ? ScoredTree(root_->Clone()) : ScoredTree();
  }

 private:
  std::unique_ptr<ScoredTreeNode> root_;
};

using ScoredTreeCollection = std::vector<ScoredTree>;

}  // namespace tix::algebra

#endif  // TIX_ALGEBRA_SCORED_TREE_H_
