#include <cstdint>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/block_codec.h"
#include "common/varint.h"
#include "tests/test_util.h"

/// \file
/// Differential fuzzing of the posting-block decode kernels. The scalar
/// loop is the reference; the SWAR and SIMD kernels must agree with it
/// bit-for-bit on decoded triples AND on Status outcomes (same
/// ok/corruption verdict, same message) for every input — seeded random
/// blocks, every-prefix truncations, trailing bytes, overlong varints,
/// v4 padding violations, and wraparound deltas. Also pins the varint
/// boundary semantics shared between common/varint.h (GetVarint32) and
/// the kernels' inline decoders so the two never drift. Runs under TSan
/// and ASan/UBSan via scripts/check_sanitizers.sh, which is what proves
/// the SIMD tail handling never reads past the buffer.

namespace tix::codec {
namespace {

constexpr TailFormat kFormats[] = {TailFormat::kV3, TailFormat::kV4};

std::vector<DecodeKernel> AvailableKernels() {
  std::vector<DecodeKernel> kernels;
  for (const DecodeKernel kernel :
       {DecodeKernel::kScalar, DecodeKernel::kSwar, DecodeKernel::kSimd}) {
    if (DecodeKernelAvailable(kernel)) kernels.push_back(kernel);
  }
  return kernels;
}

struct DecodeOutcome {
  std::string status;  // Status::ToString() — exact message parity
  std::vector<uint32_t> triples;
};

/// Decodes `bytes` as a `count`-posting block tail with head (7, 11, 13)
/// under one kernel. The triples vector is only meaningful when the
/// status is OK (kernels may differ in how much scratch they touched
/// before detecting corruption).
DecodeOutcome DecodeWith(TailFormat format, DecodeKernel kernel,
                         std::string_view bytes, size_t count) {
  DecodeOutcome out;
  out.triples.assign(3 * count, 0);
  out.triples[0] = 7;
  out.triples[1] = 11;
  out.triples[2] = 13;
  const Status status =
      DecodeBlockTailWithKernel(format, kernel, bytes, count,
                                out.triples.data());
  out.status = status.ToString();
  if (!status.ok()) out.triples.clear();
  return out;
}

/// Asserts that every available kernel produces the scalar kernel's
/// exact outcome on (format, bytes, count).
void ExpectKernelParity(TailFormat format, std::string_view bytes,
                        size_t count, const std::string& label) {
  const DecodeOutcome reference =
      DecodeWith(format, DecodeKernel::kScalar, bytes, count);
  for (const DecodeKernel kernel : AvailableKernels()) {
    const DecodeOutcome got = DecodeWith(format, kernel, bytes, count);
    ASSERT_EQ(got.status, reference.status)
        << label << " format=" << static_cast<int>(format)
        << " kernel=" << DecodeKernelName(kernel);
    ASSERT_EQ(got.triples, reference.triples)
        << label << " format=" << static_cast<int>(format)
        << " kernel=" << DecodeKernelName(kernel);
  }
}

/// A random block of `count` posting triples. `doc_change_num/denom` is
/// the probability a posting starts a new document (exercising the
/// node/pos reset rule); `wild` draws values from the full uint32 range
/// (any values round-trip — deltas wrap by design).
std::vector<uint32_t> RandomTriples(std::mt19937* rng, size_t count,
                                    int doc_change_num, int doc_change_denom,
                                    bool wild) {
  std::uniform_int_distribution<uint32_t> byte_class(0, 3);
  std::uniform_int_distribution<uint32_t> full;
  std::uniform_int_distribution<int> denom(1, doc_change_denom);
  auto value = [&]() -> uint32_t {
    if (wild) return full(*rng);
    switch (byte_class(*rng)) {
      case 0:
        return 0;
      case 1:
        return full(*rng) % 250 + 1;
      case 2:
        return full(*rng) % 60000 + 256;
      default:
        return full(*rng);
    }
  };
  std::vector<uint32_t> triples;
  triples.reserve(3 * count);
  uint32_t doc = value();
  for (size_t i = 0; i < count; ++i) {
    if (i > 0 && denom(*rng) <= doc_change_num) doc += value() + 1;
    triples.push_back(doc);
    triples.push_back(value());
    triples.push_back(value());
  }
  return triples;
}

// ------------------------------------------------------ dispatch basics

TEST(DecodeKernelTest, PortableKernelsAreAlwaysAvailable) {
  EXPECT_TRUE(DecodeKernelAvailable(DecodeKernel::kScalar));
  EXPECT_TRUE(DecodeKernelAvailable(DecodeKernel::kSwar));
  EXPECT_TRUE(DecodeKernelAvailable(ActiveDecodeKernel()));
  EXPECT_STREQ(DecodeKernelName(DecodeKernel::kScalar), "scalar");
  EXPECT_STREQ(DecodeKernelName(DecodeKernel::kSwar), "swar");
  EXPECT_STREQ(DecodeKernelName(DecodeKernel::kSimd), "simd");
}

TEST(DecodeKernelTest, SetActiveKernelRoutesDecodeBlockTail) {
  const DecodeKernel previous = ActiveDecodeKernel();
  const uint32_t triples[6] = {1, 2, 3, 1, 2, 5};
  for (const DecodeKernel kernel : AvailableKernels()) {
    SetActiveDecodeKernel(kernel);
    EXPECT_EQ(ActiveDecodeKernel(), kernel);
    for (const TailFormat format : kFormats) {
      std::string bytes;
      EncodeBlockTail(format, triples, 2, &bytes);
      uint32_t out[6] = {1, 2, 3, 0, 0, 0};
      testing::ExpectOk(DecodeBlockTail(format, bytes, 2, out));
      EXPECT_EQ(out[3], 1u);
      EXPECT_EQ(out[4], 2u);
      EXPECT_EQ(out[5], 5u);
    }
  }
  SetActiveDecodeKernel(previous);
}

// ------------------------------------------------- differential fuzzing

TEST(KernelDifferentialTest, SeededRandomBlocksAgreeAcrossKernels) {
  std::mt19937 rng(20260808);
  std::uniform_int_distribution<size_t> count_dist(1, 128);
  struct Config {
    int num;
    int denom;
    bool wild;
  };
  // Doc-change rates from "one long document" to "every posting a new
  // doc", plus a full-range wild config that forces 4-byte codes and
  // wraparound reconstruction.
  const Config configs[] = {{0, 1, false},  {1, 50, false}, {1, 4, false},
                            {9, 10, false}, {1, 1, false},  {1, 3, true}};
  for (const Config& config : configs) {
    for (int iter = 0; iter < 300; ++iter) {
      const size_t count = count_dist(rng);
      const std::vector<uint32_t> triples =
          RandomTriples(&rng, count, config.num, config.denom, config.wild);
      for (const TailFormat format : kFormats) {
        std::string bytes;
        EncodeBlockTail(format, triples.data(), count, &bytes);
        for (const DecodeKernel kernel : AvailableKernels()) {
          std::vector<uint32_t> decoded(3 * count);
          decoded[0] = triples[0];
          decoded[1] = triples[1];
          decoded[2] = triples[2];
          const Status status = DecodeBlockTailWithKernel(
              format, kernel, bytes, count, decoded.data());
          ASSERT_TRUE(status.ok())
              << DecodeKernelName(kernel) << " format="
              << static_cast<int>(format) << ": " << status.ToString();
          ASSERT_EQ(decoded, triples)
              << DecodeKernelName(kernel)
              << " format=" << static_cast<int>(format) << " count=" << count;
        }
      }
    }
  }
}

TEST(KernelDifferentialTest, TruncationsAndTrailingBytesAgreeAcrossKernels) {
  std::mt19937 rng(97);
  std::uniform_int_distribution<size_t> count_dist(2, 64);
  for (int iter = 0; iter < 40; ++iter) {
    const size_t count = count_dist(rng);
    const std::vector<uint32_t> triples =
        RandomTriples(&rng, count, 1, 3, iter % 5 == 0);
    for (const TailFormat format : kFormats) {
      std::string bytes;
      EncodeBlockTail(format, triples.data(), count, &bytes);
      // Every strict prefix: all kernels must reject, with the same
      // message the scalar reference gives.
      for (size_t len = 0; len < bytes.size(); ++len) {
        ExpectKernelParity(format, std::string_view(bytes).substr(0, len),
                           count, "prefix=" + std::to_string(len));
      }
      // One trailing byte of every class: still exact parity (the zero
      // byte is a valid varint / control pattern, so it probes the
      // trailing-bytes check rather than the varint validator).
      for (const char extra : {'\0', '\x01', '\x7f', '\x80', '\xff'}) {
        ExpectKernelParity(format, bytes + extra, count, "trailing");
      }
    }
  }
}

TEST(KernelDifferentialTest, RandomGarbageAgreesAcrossKernels) {
  std::mt19937 rng(4242);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::uniform_int_distribution<size_t> len_dist(0, 200);
  std::uniform_int_distribution<size_t> count_dist(1, 128);
  for (int iter = 0; iter < 2000; ++iter) {
    const size_t len = len_dist(rng);
    std::string bytes;
    bytes.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(byte_dist(rng)));
    }
    const size_t count = count_dist(rng);
    for (const TailFormat format : kFormats) {
      ExpectKernelParity(format, bytes, count,
                         "garbage iter=" + std::to_string(iter));
    }
  }
}

// ------------------------------------------------- adversarial corners

TEST(KernelDifferentialTest, OverlongAndNonCanonicalVarints) {
  // v3 corners, decoded as a 2-posting block (tail = dd, nd, pd).
  const struct {
    const char* label;
    std::string bytes;
  } cases[] = {
      {"five 0xff continuations", std::string("\xff\xff\xff\xff\xff", 5)},
      {"fifth byte carries bit 4", std::string("\xff\xff\xff\xff\x1f", 5)},
      {"fifth byte max valid", std::string("\xff\xff\xff\xff\x0f", 5) +
                                  std::string("\x00\x00", 2)},
      {"non-canonical zero", std::string("\x80\x00", 2) +
                                 std::string("\x00\x00", 2)},
      {"non-canonical five-byte zero",
       std::string("\x80\x80\x80\x80\x00", 5) + std::string("\x00\x00", 2)},
      {"six-byte continuation",
       std::string("\x80\x80\x80\x80\x80\x00", 6) + std::string("\x00\x00", 2)},
      {"eight continuations then stop",
       std::string("\x80\x80\x80\x80\x80\x80\x80\x80\x00", 9)},
  };
  for (const auto& test_case : cases) {
    ExpectKernelParity(TailFormat::kV3, test_case.bytes, 2, test_case.label);
  }
  // The accept cases must actually accept (guard against "parity by
  // everything rejecting").
  EXPECT_TRUE(DecodeBlockTailWithKernel(
                  TailFormat::kV3, DecodeKernel::kScalar, cases[2].bytes, 2,
                  std::vector<uint32_t>(6).data())
                  .ok());
  EXPECT_TRUE(DecodeBlockTailWithKernel(
                  TailFormat::kV3, DecodeKernel::kScalar, cases[3].bytes, 2,
                  std::vector<uint32_t>(6).data())
                  .ok());
}

TEST(KernelDifferentialTest, V4FramingViolations) {
  // A valid 5-posting v4 tail to mutate: 12 values -> 3 control bytes.
  const uint32_t triples[15] = {9, 9, 9, 9, 10, 3,  9, 10, 7, 9, 10,
                                12, 10, 4, 2};
  std::string valid;
  EncodeBlockTail(TailFormat::kV4, triples, 5, &valid);
  ExpectKernelParity(TailFormat::kV4, valid, 5, "valid baseline");
  ASSERT_TRUE(DecodeBlockTailWithKernel(TailFormat::kV4, DecodeKernel::kScalar,
                                        valid, 5,
                                        std::vector<uint32_t>(15).data())
                  .ok());

  // Nonzero padding codes in the unused slots of the last control byte
  // must be rejected by every kernel identically.
  {
    std::string mutated = valid;
    mutated[2] = static_cast<char>(static_cast<uint8_t>(mutated[2]) | 0xc0);
    ExpectKernelParity(TailFormat::kV4, mutated, 5, "padding code set");
    EXPECT_FALSE(DecodeBlockTailWithKernel(TailFormat::kV4,
                                           DecodeKernel::kScalar, mutated, 5,
                                           std::vector<uint32_t>(15).data())
                     .ok());
  }
  // Inflating a length code without supplying data bytes starves the
  // data region; all kernels must agree on the failure.
  {
    std::string mutated = valid;
    mutated[0] = static_cast<char>(static_cast<uint8_t>(mutated[0]) | 0x03);
    ExpectKernelParity(TailFormat::kV4, mutated, 5, "inflated length code");
  }
  // Control bytes alone (empty data region when codes demand bytes).
  ExpectKernelParity(TailFormat::kV4, valid.substr(0, 3), 5, "ctrl only");
  // An all-zero tail is only valid when every delta is zero — for 5
  // postings that means 3 zero control bytes and nothing else.
  ExpectKernelParity(TailFormat::kV4, std::string(3, '\0'), 5, "all zero");
  EXPECT_TRUE(DecodeBlockTailWithKernel(TailFormat::kV4, DecodeKernel::kScalar,
                                        std::string(3, '\0'), 5,
                                        std::vector<uint32_t>(15).data())
                  .ok());
}

TEST(KernelDifferentialTest, WraparoundDeltasReconstructIdentically) {
  // Descending docs and full-range jumps: deltas wrap modulo 2^32 and
  // must reconstruct to the original values in every kernel. (The index
  // layer validates ordering separately; the codec is order-agnostic.)
  const std::vector<uint32_t> triples = {
      0xffffffffu, 0xffffffffu, 0xffffffffu,  // head at the top of range
      0u,          0xfffffffeu, 1u,           // doc wraps to 0
      0u,          0u,          0xffffffffu,  // pos jumps to max
      0xfffffffeu, 7u,          0u,           // doc nearly wraps again
      0xfffffffeu, 7u,          0u,           // exact repeat (zero deltas)
  };
  const size_t count = triples.size() / 3;
  for (const TailFormat format : kFormats) {
    std::string bytes;
    EncodeBlockTail(format, triples.data(), count, &bytes);
    for (const DecodeKernel kernel : AvailableKernels()) {
      std::vector<uint32_t> decoded(triples.size());
      decoded[0] = triples[0];
      decoded[1] = triples[1];
      decoded[2] = triples[2];
      testing::ExpectOk(DecodeBlockTailWithKernel(format, kernel, bytes, count,
                                                  decoded.data()));
      EXPECT_EQ(decoded, triples)
          << DecodeKernelName(kernel) << " format=" << static_cast<int>(format);
    }
  }
}

// -------------------------------------- varint boundary semantics (v3)

/// The kernels' inline varint decoders and GetVarint32 must accept the
/// same canonical encodings with the same values, and reject the same
/// truncations — the two surfaces decode the same wire format (list
/// headers use GetVarint32, block tails use the kernels) and must never
/// drift. The one deliberate divergence: the kernels cap an encoding at
/// 5 bytes (nothing the encoder emits is longer), while GetVarint32
/// tolerates overlong zero-padding; the kernels being strictly tighter
/// is asserted in OverlongAndNonCanonicalVarints above.
TEST(VarintBoundaryTest, KernelsMatchGetVarint32AtEveryBoundary) {
  const uint32_t boundaries[] = {
      0u,           1u,           127u,          128u,         129u,
      (1u << 14) - 1, 1u << 14,   (1u << 14) + 1,
      (1u << 21) - 1, 1u << 21,   (1u << 21) + 1,
      (1u << 28) - 1, 1u << 28,   (1u << 28) + 1,
      UINT32_MAX - 1, UINT32_MAX};
  for (const uint32_t value : boundaries) {
    std::string encoded;
    PutVarint32(&encoded, value);

    // GetVarint32 round-trips the canonical encoding...
    std::string_view view = encoded;
    EXPECT_EQ(testing::Unwrap(GetVarint32(&view)), value);
    EXPECT_TRUE(view.empty());
    // ...and rejects every strict prefix.
    for (size_t len = 0; len < encoded.size(); ++len) {
      std::string_view prefix = std::string_view(encoded).substr(0, len);
      EXPECT_FALSE(GetVarint32(&prefix).ok()) << value << " prefix " << len;
    }

    // Each kernel decodes the same encoding in both the doc-delta slot
    // (reset rule fires for nonzero values) and the node-delta slot
    // (accumulation path), and rejects the same prefixes.
    const std::string zero2("\x00\x00", 2);
    const std::string as_doc = encoded + zero2;
    std::string as_node;
    as_node.push_back('\x00');
    as_node += encoded;
    as_node.push_back('\x00');
    for (const DecodeKernel kernel : AvailableKernels()) {
      uint32_t out[6] = {40, 50, 60, 0, 0, 0};
      testing::ExpectOk(DecodeBlockTailWithKernel(
          TailFormat::kV3, kernel, as_doc, 2, out));
      EXPECT_EQ(out[3], 40u + value) << DecodeKernelName(kernel);
      EXPECT_EQ(out[4], value == 0 ? 50u : 0u) << DecodeKernelName(kernel);

      uint32_t out2[6] = {40, 50, 60, 0, 0, 0};
      testing::ExpectOk(DecodeBlockTailWithKernel(
          TailFormat::kV3, kernel, as_node, 2, out2));
      EXPECT_EQ(out2[3], 40u) << DecodeKernelName(kernel);
      EXPECT_EQ(out2[4], 50u + value) << DecodeKernelName(kernel);

      for (size_t len = 0; len < encoded.size(); ++len) {
        uint32_t scratch[6] = {40, 50, 60, 0, 0, 0};
        EXPECT_FALSE(DecodeBlockTailWithKernel(
                         TailFormat::kV3, kernel,
                         std::string_view(encoded).substr(0, len), 2, scratch)
                         .ok())
            << DecodeKernelName(kernel) << " value " << value << " prefix "
            << len;
      }
    }
  }
}

}  // namespace
}  // namespace tix::codec
