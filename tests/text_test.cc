#include <gtest/gtest.h>

#include "text/term_dictionary.h"
#include "text/tokenizer.h"

namespace tix::text {
namespace {

TEST(TokenizerTest, BasicSplitAndLowercase) {
  Tokenizer tokenizer;
  const auto tokens = tokenizer.Tokenize("Hello, World! 123 foo-bar");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].term, "hello");
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].term, "world");
  EXPECT_EQ(tokens[2].term, "123");
  EXPECT_EQ(tokens[3].term, "foo");
  EXPECT_EQ(tokens[3].position, 3u);
  EXPECT_EQ(tokens[4].term, "bar");
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  Tokenizer tokenizer;
  EXPECT_TRUE(tokenizer.Tokenize("").empty());
  EXPECT_TRUE(tokenizer.Tokenize("  ... !!! ---").empty());
}

TEST(TokenizerTest, StopwordRemovalKeepsPositions) {
  TokenizerOptions options;
  options.remove_stopwords = true;
  Tokenizer tokenizer(options);
  const auto tokens = tokenizer.Tokenize("the quick fox and the dog");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].term, "quick");
  EXPECT_EQ(tokens[0].position, 1u);  // hole at 0 ("the")
  EXPECT_EQ(tokens[1].term, "fox");
  EXPECT_EQ(tokens[1].position, 2u);
  EXPECT_EQ(tokens[2].term, "dog");
  EXPECT_EQ(tokens[2].position, 5u);
}

TEST(TokenizerTest, RawPositionsCountDroppedTokens) {
  TokenizerOptions options;
  options.remove_stopwords = true;
  Tokenizer tokenizer(options);
  // Stopword tail: the last *kept* token sits at position 1, but four
  // words occupy interval space.
  uint32_t raw = 0;
  const auto tokens = tokenizer.Tokenize("search engines of the", &raw);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens.back().position, 1u);
  EXPECT_EQ(raw, 4u);

  // Stopword-only text keeps no tokens yet still has width.
  EXPECT_TRUE(tokenizer.Tokenize("of the and", &raw).empty());
  EXPECT_EQ(raw, 3u);

  EXPECT_TRUE(tokenizer.Tokenize("", &raw).empty());
  EXPECT_EQ(raw, 0u);

  // No stopword removal: raw count equals the kept count.
  Tokenizer plain;
  const auto all = plain.Tokenize("of the and", &raw);
  EXPECT_EQ(all.size(), 3u);
  EXPECT_EQ(raw, 3u);
}

TEST(TokenizerTest, StemmingOption) {
  TokenizerOptions options;
  options.stem = true;
  Tokenizer tokenizer(options);
  const auto terms = tokenizer.TokenizeToTerms("engines queries running");
  ASSERT_EQ(terms.size(), 3u);
  EXPECT_EQ(terms[0], "engine");
  EXPECT_EQ(terms[1], "query");
  EXPECT_EQ(terms[2], "run");
}

TEST(TokenizerTest, NormalizeMatchesTokenization) {
  TokenizerOptions options;
  options.stem = true;
  Tokenizer tokenizer(options);
  EXPECT_EQ(tokenizer.Normalize("Engines"),
            tokenizer.TokenizeToTerms("Engines")[0]);
}

TEST(StemmerTest, PluralForms) {
  EXPECT_EQ(StemWord("engines"), "engine");
  EXPECT_EQ(StemWord("classes"), "class");
  EXPECT_EQ(StemWord("queries"), "query");
  EXPECT_EQ(StemWord("class"), "class");
  EXPECT_EQ(StemWord("bus"), "bus");
  EXPECT_EQ(StemWord("analysis"), "analysis");
}

TEST(StemmerTest, ShortWordsUntouched) {
  EXPECT_EQ(StemWord("as"), "as");
  EXPECT_EQ(StemWord("is"), "is");
  EXPECT_EQ(StemWord("its"), "its");
}

TEST(StemmerTest, EdIngLy) {
  EXPECT_EQ(StemWord("indexed"), "index");
  EXPECT_EQ(StemWord("running"), "run");
  EXPECT_EQ(StemWord("quickly"), "quick");
}

TEST(StopwordTest, CommonWords) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("and"));
  EXPECT_TRUE(IsStopword("of"));
  EXPECT_FALSE(IsStopword("engine"));
  EXPECT_FALSE(IsStopword("xml"));
}

TEST(TermDictionaryTest, InternIsIdempotent) {
  TermDictionary dict;
  const TermId a = dict.Intern("alpha");
  const TermId b = dict.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("alpha"), a);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.TermOf(a), "alpha");
  EXPECT_EQ(dict.Lookup("beta"), b);
  EXPECT_EQ(dict.Lookup("gamma"), kInvalidTermId);
}

TEST(TermDictionaryTest, SerializationRoundTrip) {
  TermDictionary dict;
  for (int i = 0; i < 100; ++i) dict.Intern("term" + std::to_string(i));
  dict.Intern("");  // empty term is legal
  const std::string blob = dict.Serialize();
  const auto restored = TermDictionary::Deserialize(blob);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().size(), dict.size());
  EXPECT_EQ(restored.value().Lookup("term42"), dict.Lookup("term42"));
  EXPECT_EQ(restored.value().TermOf(7), "term7");
}

TEST(TermDictionaryTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(TermDictionary::Deserialize("\xFF\xFF\xFF").ok());
  TermDictionary dict;
  dict.Intern("abc");
  std::string blob = dict.Serialize();
  blob.resize(blob.size() - 1);
  EXPECT_FALSE(TermDictionary::Deserialize(blob).ok());
}

}  // namespace
}  // namespace tix::text
