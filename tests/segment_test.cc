// Segmented-index tests: manifest codec round-trips and corruption
// detection, segment load cross-checks, the ingest/delete/seal/compact
// equivalence fuzz (N seeded interleavings must answer byte-identically
// to a bulk-built index over the same live documents, across scorers,
// phrases, top-K depths and thread counts), snapshot pinning under
// compaction, crash recovery of unsealed documents, adoption of a
// legacy monolithic index.tix, the generation-stamped result cache,
// the live-mode server (INGEST/DELETE/COMPACT frames), and the
// SIGPIPE-free write path. The concurrency tests double as the TSan
// cases for scripts/check_sanitizers.sh: queries pin snapshots while
// ingestion and compaction publish new generations.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "index/inverted_index.h"
#include "index/manifest.h"
#include "index/segment.h"
#include "index/segmented_index.h"
#include "query/engine.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/result_cache.h"
#include "server/server.h"
#include "storage/database.h"
#include "tests/test_util.h"
#include "xml/parser.h"

namespace tix {
namespace {

using ::tix::testing::ExpectOk;
using ::tix::testing::MakeTestDatabase;
using ::tix::testing::TempDir;
using ::tix::testing::Unwrap;

// ---------------------------------------------------------------------------
// Manifest codec

index::Manifest SampleManifest() {
  index::Manifest manifest;
  manifest.generation = 12;
  manifest.next_segment_id = 3;
  manifest.next_doc = 20;
  manifest.segments.push_back(
      index::SegmentInfo{0, "segment-0.tix", 0, 7, 8, 400});
  manifest.segments.push_back(
      index::SegmentInfo{2, "segment-2.tix", 8, 19, 12, 777});
  manifest.tombstones = {3, 11};
  manifest.deleted = {1, 3, 11};
  return manifest;
}

TEST(ManifestTest, EncodeDecodeRoundTrip) {
  const index::Manifest original = SampleManifest();
  const index::Manifest decoded = Unwrap(index::Manifest::Decode(
      original.Encode()));
  EXPECT_EQ(decoded.generation, original.generation);
  EXPECT_EQ(decoded.next_segment_id, original.next_segment_id);
  EXPECT_EQ(decoded.next_doc, original.next_doc);
  EXPECT_EQ(decoded.segments, original.segments);
  EXPECT_EQ(decoded.tombstones, original.tombstones);
  EXPECT_EQ(decoded.deleted, original.deleted);
  ExpectOk(decoded.Validate());
}

TEST(ManifestTest, EveryFlippedByteIsRejected) {
  const std::string blob = SampleManifest().Encode();
  for (size_t i = 0; i < blob.size(); ++i) {
    std::string damaged = blob;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x40);
    const auto decoded = index::Manifest::Decode(damaged);
    // Either the CRC trips, or (if the flip landed in the CRC trailer's
    // own encoding) the framing does; silent acceptance of a different
    // manifest is the only failure.
    if (decoded.ok()) {
      EXPECT_EQ(decoded.value().Encode(), blob) << "byte " << i;
    }
  }
}

TEST(ManifestTest, ValidateRejectsOverlapAndUnsortedTombstones) {
  index::Manifest manifest = SampleManifest();
  manifest.segments[1].min_doc = 5;  // overlaps segment 0's [0,7]
  EXPECT_FALSE(manifest.Validate().ok());

  manifest = SampleManifest();
  manifest.tombstones = {11, 3};
  EXPECT_FALSE(manifest.Validate().ok());

  manifest = SampleManifest();
  manifest.tombstones = {5};  // not a subset of deleted
  EXPECT_FALSE(manifest.Validate().ok());
}

TEST(ManifestTest, SaveLoadAndAbsence) {
  TempDir dir;
  EXPECT_TRUE(index::LoadManifest(dir.path()).status().IsNotFound());
  ExpectOk(index::SaveManifest(SampleManifest(), dir.path()));
  const index::Manifest loaded = Unwrap(index::LoadManifest(dir.path()));
  EXPECT_EQ(loaded.segments, SampleManifest().segments);
}

// ---------------------------------------------------------------------------
// Fuzz scaffolding: a tiny deterministic corpus of one-article documents

/// Deterministic article: background words plus planted terms. Every
/// doc contains "xhot"; some contain the rare "xcold" and the adjacent
/// phrase "xone xtwo".
std::string MakeArticleXml(std::mt19937_64* rng) {
  static const char* kVocabulary[] = {"alpha", "beta",  "gamma", "delta",
                                      "kappa", "sigma", "omega", "lambda"};
  std::uniform_int_distribution<size_t> pick_word(
      0, sizeof(kVocabulary) / sizeof(kVocabulary[0]) - 1);
  std::uniform_int_distribution<int> coin(0, 3);
  auto words = [&](int count) {
    std::string out;
    for (int i = 0; i < count; ++i) {
      if (!out.empty()) out += ' ';
      out += kVocabulary[pick_word(*rng)];
    }
    return out;
  };
  std::string xml = "<article><title>" + words(3) + " xhot</title>";
  const int sections = 1 + coin(*rng) % 2;
  for (int s = 0; s < sections; ++s) {
    xml += "<sec><p>" + words(6);
    if (coin(*rng) == 0) xml += " xcold";
    if (coin(*rng) <= 1) xml += " xone xtwo";
    xml += " xhot " + words(4) + "</p></sec>";
  }
  xml += "</article>";
  return xml;
}

struct LiveDoc {
  std::string name;
  std::string xml;
};

/// The query set exercised by every equivalence check, parameterized by
/// a live document name: plain and phrase predicates, count-like (foo)
/// and tfidf scorers, top-K 1 / 3 / unbounded.
std::vector<std::string> EquivalenceQueries(const std::string& doc) {
  const std::string bind = "FOR $a IN document(\"" + doc + "\")//article//*";
  return {
      bind + " SCORE $a USING foo({\"xhot\"}) THRESHOLD STOP AFTER 1 "
             "RETURN $a",
      bind + " SCORE $a USING foo({\"xhot\", \"xcold\"}) THRESHOLD STOP "
             "AFTER 3 RETURN $a",
      bind + " SCORE $a USING foo({\"xhot\"}) RETURN $a",
      bind + " SCORE $a USING foo({\"xone xtwo\"}) RETURN $a",
      bind + " SCORE $a USING tfidf({\"xhot\", \"xcold\"}) THRESHOLD STOP "
             "AFTER 3 RETURN $a",
  };
}

/// Executes `text` and renders the same response the server would:
/// result count + stats header, then the result XML. Node ids differ
/// between independently built databases, so byte-comparing this
/// rendering (scores + content) is the equivalence check.
std::string RunQuery(query::QueryEngine* engine, const std::string& text) {
  const query::QueryOutput output = Unwrap(engine->ExecuteText(text));
  std::string response = StrFormat(
      "%zu results (anchors %llu, scored %llu)\n", output.results.size(),
      (unsigned long long)output.stats.anchors,
      (unsigned long long)output.stats.scored_elements);
  response += Unwrap(engine->RenderXml(output, 10));
  return response;
}

/// Asserts that the segmented index answers every equivalence query
/// byte-identically to a monolithic index bulk-built over exactly the
/// live documents, across serial and parallel execution.
void ExpectEquivalence(storage::Database* segmented_db,
                       index::SegmentedIndex* segmented,
                       const std::vector<LiveDoc>& live,
                       const std::string& scratch_dir) {
  std::filesystem::create_directories(scratch_dir);
  auto baseline_db = MakeTestDatabase(scratch_dir, 256);
  for (const LiveDoc& doc : live) {
    auto parsed = Unwrap(xml::ParseXml(doc.xml, doc.name));
    Unwrap(baseline_db->AddDocument(parsed));
  }
  auto baseline_index = Unwrap(index::InvertedIndex::Build(baseline_db.get()));
  const auto snapshot = segmented->Acquire();

  for (const size_t threads : {size_t{0}, size_t{2}, size_t{4}}) {
    query::EngineOptions options;
    options.num_threads = threads;
    query::QueryEngine segmented_engine(segmented_db, snapshot, options);
    query::QueryEngine baseline_engine(baseline_db.get(), &baseline_index,
                                       options);
    // Spot-check a few live docs, not all: the fuzz loop calls this
    // repeatedly and the query set is 5 wide x 3 thread counts deep.
    for (size_t d = 0; d < live.size(); d += (live.size() / 3) + 1) {
      for (const std::string& query : EquivalenceQueries(live[d].name)) {
        EXPECT_EQ(RunQuery(&segmented_engine, query),
                  RunQuery(&baseline_engine, query))
            << "seed-state query: " << query << " threads=" << threads;
      }
    }
  }
  // Snapshot-level collection stats must also match the bulk build.
  EXPECT_EQ(snapshot->live_documents(), live.size());
}

// ---------------------------------------------------------------------------
// The ingest/delete/seal/compact equivalence fuzz

TEST(SegmentedEquivalenceFuzz, SeededInterleavingsMatchBulkBuild) {
  for (const uint64_t seed : {11u, 23u, 47u, 81u}) {
    TempDir dir;
    std::filesystem::create_directories(dir.path() + "/seg");
    auto db = MakeTestDatabase(dir.path() + "/seg", 256);
    index::SegmentedIndexOptions options;
    options.seal_doc_count = 4;  // small, so seals happen mid-run
    options.compact_min_segments = 3;
    auto segmented = Unwrap(
        index::SegmentedIndex::Open(dir.path() + "/seg", options));

    std::mt19937_64 rng(seed);
    std::vector<std::pair<storage::DocId, LiveDoc>> live;
    int next_name = 0;
    int scratch = 0;

    for (int op = 0; op < 28; ++op) {
      const int kind = static_cast<int>(rng() % 10);
      if (kind < 5 || live.empty()) {
        // Ingest a new document (biased: the index must grow).
        LiveDoc doc;
        doc.name = "doc" + std::to_string(next_name++) + ".xml";
        doc.xml = MakeArticleXml(&rng);
        auto parsed = Unwrap(xml::ParseXml(doc.xml, doc.name));
        const storage::DocId id = Unwrap(db->AddDocument(parsed));
        ExpectOk(segmented->Ingest(db.get(), id));
        live.emplace_back(id, std::move(doc));
      } else if (kind < 7) {
        const size_t victim = rng() % live.size();
        ExpectOk(segmented->Delete(live[victim].first));
        live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
      } else if (kind < 9) {
        ExpectOk(segmented->Seal(db.get()));
      } else {
        ExpectOk(segmented->Compact());
      }
      if (op == 13) {  // mid-run check, then keep mutating
        std::vector<LiveDoc> docs;
        for (const auto& entry : live) docs.push_back(entry.second);
        ExpectEquivalence(
            db.get(), segmented.get(), docs,
            dir.path() + "/base" + std::to_string(scratch++));
      }
    }
    ExpectOk(segmented->Seal(db.get()));
    ExpectOk(segmented->Compact());
    std::vector<LiveDoc> docs;
    for (const auto& entry : live) docs.push_back(entry.second);
    ExpectEquivalence(db.get(), segmented.get(), docs,
                      dir.path() + "/base" + std::to_string(scratch++));

    // Deleted documents must not resolve, compacted away or not.
    if (!docs.empty()) {
      const auto snapshot = segmented->Acquire();
      query::QueryEngine engine(db.get(), snapshot);
      const auto missing = engine.ExecuteText(
          EquivalenceQueries("doc-that-never-existed.xml")[0]);
      EXPECT_TRUE(missing.status().IsNotFound());
    }
  }
}

TEST(SegmentedIndexTest, DeletedDocStaysDeadAcrossCompactionAndReopen) {
  TempDir dir;
  auto db = MakeTestDatabase(dir.path(), 256);
  index::SegmentedIndexOptions options;
  options.seal_doc_count = 2;
  auto segmented =
      Unwrap(index::SegmentedIndex::Open(dir.path(), options));
  std::mt19937_64 rng(5);
  for (int i = 0; i < 4; ++i) {
    auto parsed = Unwrap(
        xml::ParseXml(MakeArticleXml(&rng), "d" + std::to_string(i)));
    ExpectOk(segmented->Ingest(db.get(), Unwrap(db->AddDocument(parsed))));
  }
  ExpectOk(db->Save());
  ExpectOk(segmented->Delete(1));
  ExpectOk(segmented->Seal(db.get()));
  ExpectOk(segmented->Compact());  // drops doc 1's postings + tombstone

  // Reopen: the all-time deleted list (not the tombstones, now applied)
  // must keep doc 1 dead even though the database still stores it.
  segmented.reset();
  db = Unwrap(storage::Database::Open(dir.path()));
  segmented = Unwrap(index::SegmentedIndex::Open(dir.path(), options));
  ExpectOk(segmented->Recover(db.get()));
  const auto snapshot = segmented->Acquire();
  EXPECT_FALSE(snapshot->IsLiveDocument(1));
  EXPECT_TRUE(snapshot->IsLiveDocument(0));
  query::QueryEngine engine(db.get(), snapshot);
  EXPECT_TRUE(engine.ExecuteText(EquivalenceQueries("d1")[2])
                  .status()
                  .IsNotFound());
  EXPECT_EQ(Unwrap(engine.ExecuteText(EquivalenceQueries("d0")[2]))
                .results.empty(),
            false);
}

// ---------------------------------------------------------------------------
// Snapshot pinning, recovery, adoption

TEST(SegmentedIndexTest, PinnedSnapshotSurvivesCompactionAndDeletes) {
  TempDir dir;
  auto db = MakeTestDatabase(dir.path(), 256);
  index::SegmentedIndexOptions options;
  options.seal_doc_count = 2;
  auto segmented =
      Unwrap(index::SegmentedIndex::Open(dir.path(), options));
  std::mt19937_64 rng(9);
  for (int i = 0; i < 6; ++i) {
    auto parsed = Unwrap(
        xml::ParseXml(MakeArticleXml(&rng), "d" + std::to_string(i)));
    ExpectOk(segmented->Ingest(db.get(), Unwrap(db->AddDocument(parsed))));
  }

  const auto pinned = segmented->Acquire();
  query::QueryEngine pinned_engine(db.get(), pinned);
  const std::string query = EquivalenceQueries("d2")[2];
  const std::string before = RunQuery(&pinned_engine, query);

  // Mutate heavily behind the pinned snapshot.
  ExpectOk(segmented->Delete(2));
  ExpectOk(segmented->Seal(db.get()));
  ExpectOk(segmented->Compact());
  EXPECT_GT(segmented->generation(), pinned->generation());

  // The pinned view still answers identically — the compacted-away
  // segments it references are kept alive by its shared_ptrs.
  query::QueryEngine replay_engine(db.get(), pinned);
  EXPECT_EQ(RunQuery(&replay_engine, query), before);

  // A fresh snapshot sees the delete.
  query::QueryEngine fresh_engine(db.get(), segmented->Acquire());
  EXPECT_TRUE(fresh_engine.ExecuteText(query).status().IsNotFound());
}

// Compaction must not yank a memory-mapped segment file out from under
// a pinned snapshot: the unlink is deferred to the destructor of the
// last MappedFile reference (docs/INDEX.md "Mapping lifecycle"), i.e.
// the moment the final snapshot lets go. Unmapped segments (sealed this
// process lifetime) are unlinked eagerly as before.
TEST(SegmentedIndexTest, PinnedSnapshotDefersSegmentUnlinkUntilRelease) {
  TempDir dir;
  index::SegmentedIndexOptions options;
  options.seal_doc_count = 2;
  {
    auto db = MakeTestDatabase(dir.path(), 256);
    auto segmented =
        Unwrap(index::SegmentedIndex::Open(dir.path(), options));
    std::mt19937_64 rng(21);
    for (int i = 0; i < 4; ++i) {
      auto parsed = Unwrap(
          xml::ParseXml(MakeArticleXml(&rng), "d" + std::to_string(i)));
      ExpectOk(segmented->Ingest(db.get(), Unwrap(db->AddDocument(parsed))));
    }
    ExpectOk(db->Save());
    ExpectOk(segmented->Seal(db.get()));
  }  // reopen below so the segments come back mmap-backed

  auto db = Unwrap(storage::Database::Open(dir.path()));
  auto segmented = Unwrap(index::SegmentedIndex::Open(dir.path(), options));
  ExpectOk(segmented->Recover(db.get()));

  // The segment files about to be compacted away (read the manifest
  // before compaction rewrites it).
  std::vector<std::string> segment_files;
  for (const auto& info : Unwrap(index::LoadManifest(dir.path())).segments) {
    segment_files.push_back(dir.path() + "/" + info.file);
  }
  ASSERT_GE(segment_files.size(), 2u);
  for (const auto& file : segment_files) {
    ASSERT_TRUE(std::filesystem::exists(file)) << file;
  }

  auto pinned = segmented->Acquire();
  const std::string query = EquivalenceQueries("d1")[2];
  std::string before;
  {
    query::QueryEngine pinned_engine(db.get(), pinned);
    before = RunQuery(&pinned_engine, query);
  }

  ExpectOk(segmented->Compact());

  // The replaced files must still exist — the pinned snapshot serves
  // postings straight out of their mappings.
  for (const auto& file : segment_files) {
    EXPECT_TRUE(std::filesystem::exists(file)) << file;
  }
  {
    query::QueryEngine replay_engine(db.get(), pinned);
    EXPECT_EQ(RunQuery(&replay_engine, query), before);
  }

  // Releasing the last pin unmaps — and only then unlinks.
  pinned.reset();
  for (const auto& file : segment_files) {
    EXPECT_FALSE(std::filesystem::exists(file)) << file;
  }
}

TEST(SegmentedIndexTest, RecoverReBuffersUnsealedDocuments) {
  TempDir dir;
  std::vector<LiveDoc> docs;
  {
    auto db = MakeTestDatabase(dir.path(), 256);
    index::SegmentedIndexOptions options;
    options.seal_doc_count = 3;
    auto segmented =
        Unwrap(index::SegmentedIndex::Open(dir.path(), options));
    std::mt19937_64 rng(3);
    for (int i = 0; i < 7; ++i) {  // seals at 3 and 6; doc 6 stays buffered
      LiveDoc doc{"d" + std::to_string(i) + ".xml", MakeArticleXml(&rng)};
      auto parsed = Unwrap(xml::ParseXml(doc.xml, doc.name));
      ExpectOk(segmented->Ingest(db.get(), Unwrap(db->AddDocument(parsed))));
      docs.push_back(std::move(doc));
    }
    ExpectOk(db->Save());
    // Drop the index without sealing: the buffered doc is only in the
    // database + manifest high-water mark.
  }
  auto db = Unwrap(storage::Database::Open(dir.path()));
  auto segmented = Unwrap(index::SegmentedIndex::Open(dir.path()));
  ExpectOk(segmented->Recover(db.get()));
  ExpectEquivalence(db.get(), segmented.get(), docs, dir.path() + "/base");
}

TEST(SegmentedIndexTest, AdoptsMonolithicIndexInPlace) {
  TempDir dir;
  auto db = MakeTestDatabase(dir.path(), 256);
  std::mt19937_64 rng(17);
  std::vector<LiveDoc> docs;
  for (int i = 0; i < 5; ++i) {
    LiveDoc doc{"d" + std::to_string(i) + ".xml", MakeArticleXml(&rng)};
    auto parsed = Unwrap(xml::ParseXml(doc.xml, doc.name));
    Unwrap(db->AddDocument(parsed));
    docs.push_back(std::move(doc));
  }
  ExpectOk(db->Save());
  auto monolithic = Unwrap(index::InvertedIndex::Build(db.get()));
  ExpectOk(monolithic.SaveToFile(dir.path() + "/index.tix"));

  // Open adopts index.tix as segment 0 without rewriting its bytes.
  auto segmented = Unwrap(index::SegmentedIndex::Open(dir.path()));
  ExpectOk(segmented->Recover(db.get()));
  EXPECT_EQ(segmented->Stats().num_segments, 1u);
  ExpectEquivalence(db.get(), segmented.get(), docs, dir.path() + "/base0");

  // And the adopted index keeps working as the first segment of a
  // growing, mutating index.
  LiveDoc extra{"extra.xml", MakeArticleXml(&rng)};
  auto parsed = Unwrap(xml::ParseXml(extra.xml, extra.name));
  ExpectOk(segmented->Ingest(db.get(), Unwrap(db->AddDocument(parsed))));
  docs.push_back(extra);
  ExpectOk(segmented->Delete(0));
  docs.erase(docs.begin());
  ExpectOk(segmented->Seal(db.get()));
  ExpectOk(segmented->Compact());
  ExpectEquivalence(db.get(), segmented.get(), docs, dir.path() + "/base1");
}

// ---------------------------------------------------------------------------
// Concurrency (the TSan cases)

TEST(SegmentedIndexTest, ConcurrentQueriesDuringCompaction) {
  TempDir dir;
  auto db = MakeTestDatabase(dir.path(), 256);
  index::SegmentedIndexOptions options;
  options.seal_doc_count = 2;
  auto segmented =
      Unwrap(index::SegmentedIndex::Open(dir.path(), options));
  std::mt19937_64 rng(21);
  for (int i = 0; i < 12; ++i) {
    auto parsed = Unwrap(
        xml::ParseXml(MakeArticleXml(&rng), "d" + std::to_string(i)));
    ExpectOk(segmented->Ingest(db.get(), Unwrap(db->AddDocument(parsed))));
  }

  // Readers hammer pinned snapshots while the writer deletes, seals and
  // compacts. No database writes happen here, so no external lock is
  // needed (the server adds one for ingestion) — this isolates the
  // snapshot machinery itself under TSan. Self-gate: zero query errors.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> query_errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      query::EngineOptions engine_options;
      engine_options.num_threads = static_cast<size_t>(t % 3);
      while (!stop.load(std::memory_order_acquire)) {
        query::QueryEngine engine(db.get(), segmented->Acquire(),
                                  engine_options);
        const auto output =
            engine.ExecuteText(EquivalenceQueries("d0")[t % 4]);
        if (!output.ok()) query_errors.fetch_add(1);
      }
    });
  }
  ThreadPool pool(1);
  for (int round = 0; round < 8; ++round) {
    ExpectOk(segmented->Delete(static_cast<storage::DocId>(round + 1)));
    ExpectOk(segmented->Seal(db.get()));
    if (!segmented->MaybeScheduleCompaction(&pool)) {
      ExpectOk(segmented->Compact());
    }
  }
  pool.Shutdown();
  stop.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(query_errors.load(), 0u);
  EXPECT_GT(segmented->Stats().compactions, 0u);
}

// ---------------------------------------------------------------------------
// Generation-stamped result cache

TEST(ResultCacheGenerationTest, StaleGenerationEvictsLazily) {
  server::ResultCache cache(1 << 20);
  cache.Insert("q", 1, std::make_shared<const std::string>("r@1"));
  ASSERT_NE(cache.Lookup("q", 1), nullptr);

  // Same key at a newer generation: the stale entry is dropped on the
  // spot and the lookup misses.
  EXPECT_EQ(cache.Lookup("q", 2), nullptr);
  server::ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.gen_evictions, 1u);
  EXPECT_EQ(stats.entries, 0u);

  // Re-inserted at the new generation it hits again...
  cache.Insert("q", 2, std::make_shared<const std::string>("r@2"));
  const auto hit = cache.Lookup("q", 2);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "r@2");
  // ...and an *older* generation is just as stale as a newer one (a
  // pinned snapshot must never see a younger cache entry).
  EXPECT_EQ(cache.Lookup("q", 1), nullptr);
  EXPECT_EQ(cache.Stats().gen_evictions, 2u);
}

// ---------------------------------------------------------------------------
// Live-mode server: INGEST / DELETE / COMPACT over the wire

class LiveServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTestDatabase(dir_.path(), 256);
    index::SegmentedIndexOptions options;
    options.seal_doc_count = 3;
    segmented_ = Unwrap(index::SegmentedIndex::Open(dir_.path(), options));
  }

  std::unique_ptr<server::TixServer> StartServer(
      server::ServerOptions options = {}) {
    auto started = std::make_unique<server::TixServer>(
        db_.get(), segmented_.get(), options);
    ExpectOk(started->Start());
    return started;
  }

  TempDir dir_;
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<index::SegmentedIndex> segmented_;
  std::mt19937_64 rng_{33};
};

TEST_F(LiveServerTest, IngestQueryDeleteCompactLifecycle) {
  auto server = StartServer();
  server::Client client = Unwrap(server::Client::Connect("127.0.0.1",
                                                         server->port()));
  for (int i = 0; i < 5; ++i) {
    const uint64_t doc_id = Unwrap(client.Ingest(
        "d" + std::to_string(i) + ".xml", MakeArticleXml(&rng_)));
    EXPECT_EQ(doc_id, static_cast<uint64_t>(i));
  }
  const std::string answer =
      Unwrap(client.Query(EquivalenceQueries("d1.xml")[2]));
  EXPECT_NE(answer.find("results"), std::string::npos);

  ExpectOk(client.Delete("d1.xml"));
  EXPECT_TRUE(client.Delete("d1.xml").IsNotFound());  // already dead
  EXPECT_TRUE(
      client.Query(EquivalenceQueries("d1.xml")[2]).status().IsNotFound());

  ExpectOk(client.Compact());
  const index::SegmentedIndexStats stats = segmented_->Stats();
  EXPECT_EQ(stats.live_documents, 4u);
  EXPECT_EQ(stats.tombstones, 0u);  // applied by the compaction
  EXPECT_EQ(stats.deleted_docs, 1u);

  const std::string json = Unwrap(client.Stats());
  for (const char* key : {"\"index\":", "\"generation\":", "\"ingests\":",
                          "\"gen_evictions\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

TEST_F(LiveServerTest, CachedResultsGoStaleOnIngest) {
  auto server = StartServer();
  server::Client client = Unwrap(server::Client::Connect("127.0.0.1",
                                                         server->port()));
  Unwrap(client.Ingest("a.xml", MakeArticleXml(&rng_)));
  const std::string query = EquivalenceQueries("a.xml")[2];
  Unwrap(client.Query(query));                       // miss + insert
  Unwrap(client.Query(query));                       // hit
  EXPECT_EQ(server->result_cache().Stats().hits, 1u);

  // Ingest bumps the generation: the cached entry must not be served.
  Unwrap(client.Ingest("b.xml", MakeArticleXml(&rng_)));
  Unwrap(client.Query(query));
  const server::ResultCacheStats stats = server->result_cache().Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_GE(stats.gen_evictions, 1u);
}

TEST_F(LiveServerTest, ConcurrentIngestDeleteAndQueries) {
  // The full serving stack under churn: sessions ingest and delete
  // while others query. Every query must succeed (against whatever
  // snapshot it pinned) — the self-gate the bench also enforces.
  server::ServerOptions options;
  options.session_threads = 6;
  options.max_inflight = 6;
  auto server = StartServer(options);

  // Seed one stable document every query thread can bind to.
  server::Client seed_client = Unwrap(server::Client::Connect(
      "127.0.0.1", server->port()));
  Unwrap(seed_client.Ingest("stable.xml", MakeArticleXml(&rng_)));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> query_errors{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      server::Client client = Unwrap(server::Client::Connect(
          "127.0.0.1", server->port()));
      int i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto result = client.Query(
            EquivalenceQueries("stable.xml")[(t + i++) % 5]);
        if (!result.ok()) query_errors.fetch_add(1);
      }
    });
  }
  {
    server::Client writer = Unwrap(server::Client::Connect(
        "127.0.0.1", server->port()));
    std::mt19937_64 writer_rng(55);
    for (int i = 0; i < 20; ++i) {
      const std::string name = "churn" + std::to_string(i) + ".xml";
      ASSERT_TRUE(writer.Ingest(name, MakeArticleXml(&writer_rng)).ok());
      if (i % 3 == 2) ExpectOk(writer.Delete(name));
      if (i % 7 == 6) ExpectOk(writer.Compact());
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(query_errors.load(), 0u);
  EXPECT_EQ(server->Stats().ingests, 21u);
}

// ---------------------------------------------------------------------------
// SIGPIPE: a peer that vanishes mid-write must not kill the process

TEST(ProtocolSigpipeTest, WriteToClosedPeerIsAnIOErrorNotDeath) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[1]);  // peer gone; the next send raises EPIPE
  // Without MSG_NOSIGNAL this delivers SIGPIPE and the default action
  // kills the test binary (no gtest handler rescues it) — merely
  // reaching the EXPECTs below is the regression check.
  const Status status =
      server::WriteFrame(fds[0], server::FrameType::kResult,
                         std::string(1 << 16, 'x'));
  EXPECT_TRUE(status.IsIOError());
  EXPECT_EQ(status.message(), "connection closed");
  ::close(fds[0]);
}

TEST(ProtocolSigpipeTest, SessionEndsCleanlyWhenClientDiesMidResponse) {
  // End to end: a client that connects, sends a request and disappears
  // without ever reading the response must leave the server running and
  // serving others. (The socketpair test above pins the EPIPE path
  // deterministically; this one checks the full session loop survives.)
  TempDir dir;
  auto db = MakeTestDatabase(dir.path(), 256);
  auto segmented = Unwrap(index::SegmentedIndex::Open(dir.path()));
  server::TixServer server(db.get(), segmented.get(), {});
  ExpectOk(server.Start());
  {
    server::Client seeder =
        Unwrap(server::Client::Connect("127.0.0.1", server.port()));
    Unwrap(seeder.Ingest("a.xml", "<a><b>alpha beta gamma</b></a>"));
  }
  {
    // Raw connection: write a query frame, then vanish before reading.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
        0);
    ExpectOk(server::WriteFrame(
        fd, server::FrameType::kQuery,
        "FOR $a IN document(\"a.xml\")//a//* "
        "SCORE $a USING foo({\"alpha\"}) RETURN $a"));
    ::close(fd);
  }
  // The abandoned session may race with the survivor's connect; what
  // matters is that the server (this process) is still alive and
  // answering afterwards.
  server::Client survivor =
      Unwrap(server::Client::Connect("127.0.0.1", server.port()));
  ExpectOk(survivor.Ping());
  EXPECT_TRUE(server.running());
  server.Stop();
}

}  // namespace
}  // namespace tix
