// End-to-end tests: corpus generation -> storage -> index -> queries ->
// persistence -> reopen, plus cross-method agreement at corpus scale and
// full Query 1/2/3 round trips on the paper example.

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "algebra/reference_eval.h"
#include "exec/composite.h"
#include "exec/gen_meet.h"
#include "exec/term_join.h"
#include "index/inverted_index.h"
#include "query/engine.h"
#include "query/similarity_join.h"
#include "tests/test_util.h"
#include "workload/corpus.h"
#include "workload/paper_example.h"

namespace tix {
namespace {

using testing::ExpectOk;
using testing::MakeTestDatabase;
using testing::TempDir;
using testing::Unwrap;

class CorpusIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTestDatabase(dir_.path(), 256);
    workload::CorpusOptions options;
    options.num_articles = 40;
    options.generate_reviews = true;
    options.num_reviews = 20;
    options.planted_terms = {{"xhot", 300}, {"xwarm", 60}, {"xcold", 5}};
    options.planted_phrases = {{"xjoin", "xalgo", 50, 40, 20}};
    corpus_ = Unwrap(workload::GenerateCorpus(db_.get(), options));
    index_ = std::make_unique<index::InvertedIndex>(
        Unwrap(index::InvertedIndex::Build(db_.get())));
  }

  TempDir dir_;
  std::unique_ptr<storage::Database> db_;
  workload::GeneratedCorpus corpus_;
  std::unique_ptr<index::InvertedIndex> index_;
};

TEST_F(CorpusIntegrationTest, CorpusShapeIsInexLike) {
  EXPECT_EQ(db_->documents().size(), 41u);  // 40 articles + reviews.xml
  EXPECT_GT(corpus_.num_elements, 1000u);
  // Every article has the fm/atl/au and bdy/sec/st/p structure.
  EXPECT_NE(db_->LookupTag("article"), text::kInvalidTermId);
  for (const char* tag : {"fm", "atl", "au", "snm", "bdy", "sec", "st", "p"}) {
    const auto* nodes = db_->ElementsWithTag(db_->LookupTag(tag));
    ASSERT_NE(nodes, nullptr) << tag;
    EXPECT_GE(nodes->size(), 40u) << tag;
  }
}

TEST_F(CorpusIntegrationTest, PersistAndReopenEverything) {
  const uint64_t nodes_before = db_->num_nodes();
  ExpectOk(db_->Save());
  ExpectOk(index_->SaveToFile(dir_.path() + "/index.tix"));
  db_.reset();  // close

  storage::DatabaseOptions options;
  options.buffer_pool_pages = 128;
  auto reopened = Unwrap(storage::Database::Open(dir_.path(), options));
  auto reloaded_index =
      Unwrap(index::InvertedIndex::LoadFromFile(dir_.path() + "/index.tix"));
  EXPECT_EQ(reopened->num_nodes(), nodes_before);
  EXPECT_EQ(reloaded_index.TermFrequency("xhot"), 300u);

  // A full query pipeline works on the reopened database.
  query::QueryEngine engine(reopened.get(), &reloaded_index);
  const auto output = Unwrap(engine.ExecuteText(R"(
      FOR $a IN document("article0.xml")//article//*
      SCORE $a USING foo({"xhot"})
      THRESHOLD STOP AFTER 5
      RETURN $a)"));
  // xhot occurs ~300 times over 40 articles, so article0 very likely has
  // some; even if not, the pipeline must not fail.
  for (const auto& item : output.results) EXPECT_GT(item.score, 0.0);
}

TEST_F(CorpusIntegrationTest, MethodsAgreeAtCorpusScale) {
  algebra::IrPredicate predicate;
  predicate.phrases.push_back(algebra::WeightedPhrase{{"xhot"}, 0.8});
  predicate.phrases.push_back(algebra::WeightedPhrase{{"xwarm"}, 0.6});
  predicate.phrases.push_back(
      algebra::WeightedPhrase{{"xjoin", "xalgo"}, 0.7});
  algebra::ComplexProximityScorer scorer(predicate.Weights());

  exec::TermJoin join(db_.get(), index_.get(), &predicate, &scorer);
  auto tj = Unwrap(join.Run());
  std::sort(tj.begin(), tj.end(),
            [](const exec::ScoredElement& a, const exec::ScoredElement& b) {
              return a.node < b.node;
            });
  exec::GeneralizedMeet meet(db_.get(), index_.get(), &predicate, &scorer);
  const auto gm = Unwrap(meet.Run());
  exec::Comp2 comp2(db_.get(), index_.get(), &predicate, &scorer);
  const auto c2 = Unwrap(comp2.Run());

  ASSERT_EQ(gm.size(), tj.size());
  ASSERT_EQ(c2.size(), tj.size());
  for (size_t i = 0; i < tj.size(); ++i) {
    EXPECT_EQ(gm[i].node, tj[i].node);
    EXPECT_NEAR(gm[i].score, tj[i].score, 1e-9);
    EXPECT_EQ(c2[i].node, tj[i].node);
    EXPECT_NEAR(c2[i].score, tj[i].score, 1e-9);
  }
  // Every output's subtree really contains at least one query term
  // (spot-check the first and last against the reference scanner).
  for (const size_t pick : {size_t{0}, tj.size() - 1}) {
    const auto occurrences = Unwrap(algebra::ScanSubtreeOccurrences(
        db_.get(), tj[pick].node, predicate));
    EXPECT_TRUE(occurrences.any());
  }
}

TEST_F(CorpusIntegrationTest, PlantedFrequencySweepIsMonotone) {
  // More frequent terms produce more scored elements and larger total
  // score mass.
  algebra::WeightedCountScorer scorer({1.0});
  size_t last_outputs = 0;
  for (const char* term : {"xcold", "xwarm", "xhot"}) {
    algebra::IrPredicate predicate;
    predicate.phrases.push_back(
        algebra::WeightedPhrase{{term}, 1.0});
    exec::TermJoin join(db_.get(), index_.get(), &predicate, &scorer);
    const auto out = Unwrap(join.Run());
    EXPECT_GT(out.size(), last_outputs) << term;
    last_outputs = out.size();
  }
}

TEST_F(CorpusIntegrationTest, SimilarityJoinFindsPlantedOverlap) {
  // Review titles are copied from article titles, so the join over
  // titles must produce pairs with similarity >= 2 (titles have >= 3
  // words).
  const auto* articles = db_->ElementsWithTag(db_->LookupTag("article"));
  const auto* reviews = db_->ElementsWithTag(db_->LookupTag("review"));
  ASSERT_NE(articles, nullptr);
  ASSERT_NE(reviews, nullptr);
  const auto titles =
      Unwrap(query::FirstDescendantWithTag(db_.get(), *articles, "atl"));
  const auto review_titles =
      Unwrap(query::FirstDescendantWithTag(db_.get(), *reviews, "title"));
  query::SimilarityJoinOptions options;
  options.min_similarity = 1.5;
  const auto pairs = Unwrap(query::SimilarityJoin(db_.get(), titles,
                                                  review_titles, options));
  EXPECT_GE(pairs.size(), 20u);  // every review matches its source article
  EXPECT_GE(pairs.front().similarity, 2.0);
}

TEST(StemmedDatabaseTest, StemmingImprovesPhraseRecall) {
  // With stemming enabled at load+index time, the phrase "search engine"
  // also matches "search engines" — Figure 1's paragraphs become phrase
  // hits instead of near-misses.
  TempDir plain_dir;
  TempDir stemmed_dir;
  auto count_phrase = [](const std::string& dir, bool stem) {
    storage::DatabaseOptions options;
    options.buffer_pool_pages = 64;
    options.tokenizer.stem = stem;
    auto db = Unwrap(storage::Database::Create(dir, options));
    ExpectOk(workload::LoadPaperExample(db.get()));
    auto index = Unwrap(index::InvertedIndex::Build(db.get()));
    algebra::IrPredicate predicate =
        algebra::IrPredicate::FooStyle({"search engine"}, {});
    algebra::WeightedCountScorer scorer(predicate.Weights());
    exec::TermJoin join(db.get(), &index, &predicate, &scorer);
    const auto out = Unwrap(join.Run());
    uint32_t total = 0;
    for (const auto& element : out) {
      if (element.level == 0) total = element.counts[0];  // document root
    }
    return total;
  };
  const uint32_t plain = count_phrase(plain_dir.path(), false);
  const uint32_t stemmed = count_phrase(stemmed_dir.path(), true);
  EXPECT_EQ(plain, 2u);       // "Search Engine Basics", "…NewsInEssence"
  EXPECT_GT(stemmed, plain);  // + "search engines" occurrences
}

TEST(StopwordDatabaseTest, StopwordRemovalShrinksIndex) {
  TempDir plain_dir;
  TempDir filtered_dir;
  auto postings = [](const std::string& dir, bool remove) {
    storage::DatabaseOptions options;
    options.buffer_pool_pages = 64;
    options.tokenizer.remove_stopwords = remove;
    auto db = Unwrap(storage::Database::Create(dir, options));
    ExpectOk(workload::LoadPaperExample(db.get()));
    auto index = Unwrap(index::InvertedIndex::Build(db.get()));
    return index.stats().num_postings;
  };
  EXPECT_LT(postings(filtered_dir.path(), true),
            postings(plain_dir.path(), false));
}

// ---------------------------------------------------------- paper story

class PaperStoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTestDatabase(dir_.path());
    ExpectOk(workload::LoadPaperExample(db_.get()));
    index_ = std::make_unique<index::InvertedIndex>(
        Unwrap(index::InvertedIndex::Build(db_.get())));
    engine_ = std::make_unique<query::QueryEngine>(db_.get(), index_.get());
  }

  std::string TagOf(storage::NodeId node) {
    const storage::NodeRecord record = Unwrap(db_->GetNode(node));
    return db_->TagName(record.tag_id);
  }

  TempDir dir_;
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<index::InvertedIndex> index_;
  std::unique_ptr<query::QueryEngine> engine_;
};

TEST_F(PaperStoryTest, Query2TopPickIsTheSearchChapter) {
  // Example 3.1: projection + Pick + selection + threshold yields the
  // <chapter> on search and retrieval (node #a10 in Figure 1).
  const auto output = Unwrap(engine_->ExecuteText(R"(
      FOR $a IN document("articles.xml")//article[author/sname = "Doe"]//*
      SCORE $a USING foo({"search engine"},
                         {"internet", "information retrieval"})
      PICK $a USING pickfoo(0.8, 0.5)
      THRESHOLD STOP AFTER 1
      RETURN $a)"));
  ASSERT_EQ(output.results.size(), 1u);
  EXPECT_EQ(TagOf(output.results[0].node), "chapter");
  // The chapter's subtree contains the section titles of Figure 1.
  const auto subtree = Unwrap(db_->ReconstructSubtree(output.results[0].node));
  EXPECT_NE(subtree->AllText().find("Search Engine Basics"),
            std::string::npos);
}

TEST_F(PaperStoryTest, BooleanAndOrFailureMotivation) {
  // Sec. 2: pure boolean AND loses the paragraph that mentions only
  // "search engine"; OR floods with secondary-term matches. The scored
  // query keeps both worlds: the top paragraph-level result mentions the
  // primary phrase even without the secondary terms.
  const auto output = Unwrap(engine_->ExecuteText(R"(
      FOR $p IN document("articles.xml")//article//p
      SCORE $p USING foo({"search engine"},
                         {"internet", "information retrieval"})
      RETURN $p)"));
  ASSERT_GE(output.results.size(), 3u);
  // All three relevant paragraphs of the third chapter appear.
  bool found_primary_only = false;
  for (const auto& item : output.results) {
    const auto text = Unwrap(db_->AllTextOf(item.node));
    if (text.find("search engine") != std::string::npos &&
        text.find("information retrieval") == std::string::npos) {
      found_primary_only = true;
    }
  }
  EXPECT_TRUE(found_primary_only);
}

TEST_F(PaperStoryTest, SelectionResultsMatchFigure5Scores) {
  // Figure 5(a): the <p> #a18 scores 0.8 under ScoreFoo (one "search
  // engines" -> phrase "search engine" does not match "engines"; but
  // "internet" does... our normalized text differs slightly from the
  // paper's elided prose, so check the structure instead: every witness
  // tree is rooted at the article and scored >= 0).
  algebra::ScoredPatternTree pattern;
  algebra::PatternNode* article = pattern.CreateRoot(1);
  article->set_tag("article");
  article->set_secondary_score(
      algebra::SecondaryScore{4, algebra::SecondaryScore::Aggregate::kMax});
  algebra::PatternNode* author =
      article->AddChild(2, algebra::Axis::kDescendant);
  author->set_tag("author");
  algebra::PatternNode* sname = author->AddChild(3, algebra::Axis::kChild);
  sname->set_tag("sname");
  sname->AddPredicate(
      algebra::Predicate{algebra::Predicate::Kind::kContentEquals, "", "Doe"});
  algebra::PatternNode* unit =
      article->AddChild(4, algebra::Axis::kDescendantOrSelf);
  unit->set_ir(algebra::IrPredicate::FooStyle(
                   {"search engine"}, {"internet", "information retrieval"}),
               std::make_shared<algebra::WeightedCountScorer>(
                   std::vector<double>{0.8, 0.6, 0.6}));

  const auto trees = Unwrap(algebra::ScoredSelection(db_.get(), pattern));
  ASSERT_GT(trees.size(), 10u);  // one per ad* binding
  for (const auto& tree : trees) {
    EXPECT_EQ(TagOf(tree.root()->node()), "article");
  }
}

TEST_F(PaperStoryTest, ThresholdVAndKCompose) {
  const auto v_only = Unwrap(engine_->ExecuteText(R"(
      FOR $a IN document("articles.xml")//article//*
      SCORE $a USING foo({"search engine"}, {"internet"})
      THRESHOLD score > 1
      RETURN $a)"));
  const auto v_and_k = Unwrap(engine_->ExecuteText(R"(
      FOR $a IN document("articles.xml")//article//*
      SCORE $a USING foo({"search engine"}, {"internet"})
      THRESHOLD score > 1 STOP AFTER 2
      RETURN $a)"));
  EXPECT_GE(v_only.results.size(), v_and_k.results.size());
  EXPECT_LE(v_and_k.results.size(), 2u);
  for (const auto& item : v_only.results) EXPECT_GT(item.score, 1.0);
}

}  // namespace
}  // namespace tix
