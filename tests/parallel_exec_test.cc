#include <atomic>
#include <memory>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "algebra/scoring.h"
#include "common/thread_pool.h"
#include "exec/parallel_term_join.h"
#include "exec/term_join.h"
#include "index/inverted_index.h"
#include "tests/test_util.h"
#include "workload/corpus.h"
#include "workload/paper_example.h"

/// \file
/// The correctness contract of doc-partitioned parallel TermJoin: for
/// every partition count, ParallelTermJoin's output must be
/// byte-identical to the serial merge — same elements, same order, same
/// counts, same scores (exact double equality: both run the very same
/// per-element code path), same stats totals.

namespace tix::exec {
namespace {

using testing::ExpectOk;
using testing::MakeTestDatabase;
using testing::TempDir;
using testing::Unwrap;

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  int sum = 0;
  for (auto& future : futures) sum += future.get();
  int expected = 0;
  for (int i = 0; i < 32; ++i) expected += i * i;
  EXPECT_EQ(sum, expected);
}

TEST(ThreadPoolTest, ShutdownDrainsQueue) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      (void)pool.Submit([&executed] { executed.fetch_add(1); });
    }
    pool.Shutdown();  // graceful: every queued task must have run
    EXPECT_EQ(executed.load(), 64);
    EXPECT_EQ(pool.tasks_completed(), 64u);
  }
}

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

// ------------------------------------------------- equality scaffolding

void ExpectIdentical(const std::vector<ScoredElement>& parallel,
                     const std::vector<ScoredElement>& serial,
                     const std::string& label) {
  ASSERT_EQ(parallel.size(), serial.size()) << label;
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].node, serial[i].node) << label << " @" << i;
    EXPECT_EQ(parallel[i].doc, serial[i].doc) << label << " @" << i;
    EXPECT_EQ(parallel[i].start, serial[i].start) << label << " @" << i;
    EXPECT_EQ(parallel[i].end, serial[i].end) << label << " @" << i;
    EXPECT_EQ(parallel[i].level, serial[i].level) << label << " @" << i;
    EXPECT_EQ(parallel[i].counts, serial[i].counts) << label << " @" << i;
    // Exact equality, not near: identical code path per element.
    EXPECT_EQ(parallel[i].score, serial[i].score) << label << " @" << i;
  }
}

struct Corpus {
  TempDir dir;
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<index::InvertedIndex> index;
};

/// 40 articles (one document each), planted terms and a planted phrase
/// so every stream shape is exercised.
std::unique_ptr<Corpus> MakeCorpus(uint64_t articles = 40) {
  auto corpus = std::make_unique<Corpus>();
  corpus->db = MakeTestDatabase(corpus->dir.path());
  workload::CorpusOptions options;
  options.num_articles = articles;
  options.vocabulary_size = 400;
  // Frequencies scale with the article count so small corpora stay under
  // the generator's planted-occupancy limit.
  options.planted_terms = {{"xq1", 9 * articles}, {"xq2", 4 * articles}};
  options.planted_phrases = {
      {"xpa", "xpb", 5 * articles, 4 * articles, 2 * articles}};
  Unwrap(workload::GenerateCorpus(corpus->db.get(), options));
  corpus->index = std::make_unique<index::InvertedIndex>(
      Unwrap(index::InvertedIndex::Build(corpus->db.get())));
  return corpus;
}

algebra::IrPredicate ThreePhrasePredicate() {
  algebra::IrPredicate predicate;
  predicate.phrases.push_back(algebra::WeightedPhrase{{"xq1"}, 0.8});
  predicate.phrases.push_back(algebra::WeightedPhrase{{"xq2"}, 0.6});
  predicate.phrases.push_back(algebra::WeightedPhrase{{"xpa", "xpb"}, 0.7});
  return predicate;
}

/// Runs serial TermJoin and ParallelTermJoin at several partition counts
/// and asserts identical output and stats. `threads` > 1 additionally
/// runs the partitions on a real pool.
void CheckAllPartitionCounts(Corpus& corpus,
                             const algebra::IrPredicate& predicate,
                             const algebra::Scorer& scorer, bool enhanced,
                             const std::string& label) {
  TermJoinOptions serial_options;
  serial_options.enhanced = enhanced;
  TermJoin serial(corpus.db.get(), corpus.index.get(), &predicate, &scorer,
                  serial_options);
  const std::vector<ScoredElement> expected = Unwrap(serial.Run());
  const TermJoinStats& expected_stats = serial.stats();

  for (const size_t partitions : {1u, 2u, 4u, 8u}) {
    for (const size_t threads : {0u, 4u}) {
      ParallelTermJoinOptions options;
      options.join.enhanced = enhanced;
      options.num_partitions = partitions;
      options.num_threads = threads;
      ParallelTermJoin parallel(corpus.db.get(), corpus.index.get(),
                                &predicate, &scorer, options);
      const std::vector<ScoredElement> actual = Unwrap(parallel.Run());
      const std::string name = label + "/p" + std::to_string(partitions) +
                               "/t" + std::to_string(threads);
      ExpectIdentical(actual, expected, name);
      EXPECT_EQ(parallel.stats().occurrences, expected_stats.occurrences)
          << name;
      EXPECT_EQ(parallel.stats().stack_pushes, expected_stats.stack_pushes)
          << name;
      EXPECT_EQ(parallel.stats().outputs, expected_stats.outputs) << name;
      EXPECT_EQ(parallel.stats().max_stack_depth,
                expected_stats.max_stack_depth)
          << name;
      // Each partition touches exactly the records the serial merge
      // touches for its documents, so the fetch totals agree too.
      EXPECT_EQ(parallel.stats().record_fetches,
                expected_stats.record_fetches)
          << name;
    }
  }
}

// --------------------------------------------- serial/parallel equality

TEST(ParallelTermJoinTest, SimpleScoringMatchesSerial) {
  auto corpus = MakeCorpus();
  const algebra::IrPredicate predicate = ThreePhrasePredicate();
  const algebra::WeightedCountScorer scorer(predicate.Weights());
  CheckAllPartitionCounts(*corpus, predicate, scorer, /*enhanced=*/false,
                          "simple");
}

TEST(ParallelTermJoinTest, ComplexScoringMatchesSerial) {
  auto corpus = MakeCorpus();
  const algebra::IrPredicate predicate = ThreePhrasePredicate();
  const algebra::ComplexProximityScorer scorer(predicate.Weights());
  CheckAllPartitionCounts(*corpus, predicate, scorer, /*enhanced=*/false,
                          "complex");
}

TEST(ParallelTermJoinTest, EnhancedComplexMatchesSerial) {
  auto corpus = MakeCorpus();
  const algebra::IrPredicate predicate = ThreePhrasePredicate();
  const algebra::ComplexProximityScorer scorer(predicate.Weights());
  CheckAllPartitionCounts(*corpus, predicate, scorer, /*enhanced=*/true,
                          "enhanced");
}

TEST(ParallelTermJoinTest, SingleDocumentCorpus) {
  // The paper example is one document: every partition plan collapses to
  // one range and the result must still match.
  TempDir dir;
  auto db = MakeTestDatabase(dir.path());
  ExpectOk(workload::LoadPaperExample(db.get()));
  index::InvertedIndex index = Unwrap(index::InvertedIndex::Build(db.get()));
  const algebra::IrPredicate predicate = algebra::IrPredicate::FooStyle(
      {"search engine"}, {"internet", "information retrieval"});
  const algebra::WeightedCountScorer scorer(predicate.Weights());

  TermJoin serial(db.get(), &index, &predicate, &scorer);
  const auto expected = Unwrap(serial.Run());

  ParallelTermJoinOptions options;
  options.num_partitions = 8;
  options.num_threads = 4;
  ParallelTermJoin parallel(db.get(), &index, &predicate, &scorer, options);
  const auto actual = Unwrap(parallel.Run());
  ExpectIdentical(actual, expected, "single-doc");
  // Requesting 8 partitions can't produce more than one per document,
  // and no document is ever split.
  const storage::DocId num_docs =
      static_cast<storage::DocId>(db->documents().size());
  const auto& plan = parallel.partitions();
  ASSERT_FALSE(plan.empty());
  EXPECT_LE(plan.size(), num_docs);
  EXPECT_EQ(plan.front().begin, 0u);
  EXPECT_EQ(plan.back().end, num_docs);
  for (const DocRange& range : plan) EXPECT_LT(range.begin, range.end);
}

TEST(ParallelTermJoinTest, AbsentTermsProduceEmptyOutput) {
  auto corpus = MakeCorpus(8);
  algebra::IrPredicate predicate;
  predicate.phrases.push_back(
      algebra::WeightedPhrase{{"zz_never_occurs"}, 1.0});
  const algebra::WeightedCountScorer scorer(predicate.Weights());
  ParallelTermJoinOptions options;
  options.num_partitions = 4;
  options.num_threads = 2;
  ParallelTermJoin parallel(corpus->db.get(), corpus->index.get(), &predicate,
                            &scorer, options);
  EXPECT_TRUE(Unwrap(parallel.Run()).empty());
  // Mass is zero; the fallback plan still covers all documents.
  const auto& partitions = parallel.partitions();
  ASSERT_FALSE(partitions.empty());
  EXPECT_EQ(partitions.front().begin, 0u);
  EXPECT_EQ(partitions.back().end, corpus->db->documents().size());
}

// ------------------------------------------------------ partition plans

TEST(PlanDocPartitionsTest, CoversWithoutSplittingDocuments) {
  auto corpus = MakeCorpus();
  const algebra::IrPredicate predicate = ThreePhrasePredicate();
  const storage::DocId num_docs =
      static_cast<storage::DocId>(corpus->db->documents().size());
  for (const size_t target : {1u, 2u, 3u, 4u, 8u, 64u}) {
    const auto plan = PlanDocPartitions(*corpus->index, predicate, num_docs,
                                        target);
    ASSERT_FALSE(plan.empty()) << target;
    EXPECT_LE(plan.size(), target) << target;
    // Contiguous cover of [0, num_docs): boundaries are always between
    // documents, so no partition can split a document's postings.
    EXPECT_EQ(plan.front().begin, 0u);
    EXPECT_EQ(plan.back().end, num_docs);
    for (size_t i = 0; i < plan.size(); ++i) {
      EXPECT_LT(plan[i].begin, plan[i].end) << target << "/" << i;
      if (i > 0) {
        EXPECT_EQ(plan[i].begin, plan[i - 1].end) << target;
      }
    }
  }
}

TEST(PlanDocPartitionsTest, MorePartitionsThanDocuments) {
  auto corpus = MakeCorpus(3);
  const algebra::IrPredicate predicate = ThreePhrasePredicate();
  const auto plan = PlanDocPartitions(*corpus->index, predicate, 3, 8);
  EXPECT_LE(plan.size(), 3u);
  EXPECT_EQ(plan.front().begin, 0u);
  EXPECT_EQ(plan.back().end, 3u);
}

TEST(PlanDocPartitionsTest, NoDocumentsYieldsNoPartitions) {
  auto corpus = MakeCorpus(2);
  const algebra::IrPredicate predicate = ThreePhrasePredicate();
  EXPECT_TRUE(PlanDocPartitions(*corpus->index, predicate, 0, 4).empty());
}

// ------------------------------------------------------- doc-range edge

TEST(TermJoinDocRangeTest, EmptyRangeYieldsNothing) {
  auto corpus = MakeCorpus(6);
  const algebra::IrPredicate predicate = ThreePhrasePredicate();
  const algebra::WeightedCountScorer scorer(predicate.Weights());
  TermJoinOptions options;
  options.range = DocRange{3, 3};
  TermJoin join(corpus->db.get(), corpus->index.get(), &predicate, &scorer,
                options);
  EXPECT_TRUE(Unwrap(join.Run()).empty());
}

TEST(TermJoinDocRangeTest, RangeUnionEqualsWhole) {
  // Slicing at an arbitrary boundary and concatenating reproduces the
  // unrestricted merge — the core partitioning lemma, checked directly.
  auto corpus = MakeCorpus(10);
  const algebra::IrPredicate predicate = ThreePhrasePredicate();
  const algebra::WeightedCountScorer scorer(predicate.Weights());
  TermJoin whole(corpus->db.get(), corpus->index.get(), &predicate, &scorer);
  const auto expected = Unwrap(whole.Run());
  for (const storage::DocId cut : {1u, 4u, 9u}) {
    TermJoinOptions left_options;
    left_options.range = DocRange{0, cut};
    TermJoinOptions right_options;
    right_options.range = DocRange{cut, UINT32_MAX};
    TermJoin left(corpus->db.get(), corpus->index.get(), &predicate, &scorer,
                  left_options);
    TermJoin right(corpus->db.get(), corpus->index.get(), &predicate,
                   &scorer, right_options);
    std::vector<ScoredElement> glued = Unwrap(left.Run());
    const auto right_out = Unwrap(right.Run());
    glued.insert(glued.end(), right_out.begin(), right_out.end());
    ExpectIdentical(glued, expected, "cut@" + std::to_string(cut));
  }
}

// --------------------------------------------------- skip-block seeking

TEST(PostingListSkipTest, LowerBoundDocWithAndWithoutOffsets) {
  index::PostingList list;
  for (uint32_t doc = 0; doc < 10; ++doc) {
    for (uint32_t i = 0; i < 300; ++i) {
      list.postings.push_back(
          index::Posting{doc, doc * 1000 + i, doc * 10000 + i * 3});
    }
  }
  // Not built yet: falls back to binary search over postings.
  EXPECT_EQ(list.LowerBoundDoc(0), 0u);
  EXPECT_EQ(list.LowerBoundDoc(7), 7u * 300u);
  EXPECT_EQ(list.LowerBoundDoc(10), list.size());
  list.BuildSkips();
  EXPECT_EQ(list.doc_offsets.size(), 10u);
  EXPECT_EQ(list.skips.size(),
            (list.size() + index::kSkipInterval - 1) / index::kSkipInterval);
  EXPECT_EQ(list.LowerBoundDoc(0), 0u);
  EXPECT_EQ(list.LowerBoundDoc(7), 7u * 300u);
  EXPECT_EQ(list.LowerBoundDoc(10), list.size());
}

TEST(PostingListSkipTest, SkipForwardIsALowerBoundForTheTarget) {
  index::PostingList list;
  for (uint32_t i = 0; i < 5000; ++i) {
    list.postings.push_back(index::Posting{i / 700, i, i * 2});
  }
  list.BuildSkips();
  for (const uint32_t target : {0u, 999u, 2048u, 4999u, 9998u}) {
    const storage::DocId doc = (target / 2) / 700;
    const size_t jumped = list.SkipForward(0, doc, target);
    // Everything before the jump destination is strictly before the
    // target, and the destination is within one block of it.
    if (jumped > 0) {
      const index::Posting& before = list.postings[jumped - 1];
      EXPECT_TRUE(before.doc_id < doc ||
                  (before.doc_id == doc && before.word_pos < target));
    }
    const size_t exact =
        static_cast<size_t>(std::lower_bound(
                                list.postings.begin(), list.postings.end(),
                                std::make_pair(doc, target),
                                [](const index::Posting& p,
                                   const std::pair<storage::DocId, uint32_t>&
                                       t) {
                                  return p.doc_id < t.first ||
                                         (p.doc_id == t.first &&
                                          p.word_pos < t.second);
                                }) -
                            list.postings.begin());
    EXPECT_LE(jumped, exact);
    EXPECT_LE(exact - jumped, static_cast<size_t>(index::kSkipInterval));
  }
}

// ----------------------------------------------------- DebugCheckSorted

TEST(DebugCheckSortedTest, AcceptsValidAndRejectsCorruptLists) {
  index::PostingList list;
  list.postings = {{0, 5, 10}, {0, 5, 11}, {1, 9, 2}, {2, 12, 7}};
  list.doc_frequency = 3;
  list.node_frequency = 3;
  ExpectOk(list.DebugCheckSorted());

  index::PostingList unsorted = list;
  std::swap(unsorted.postings[1], unsorted.postings[2]);
  EXPECT_FALSE(unsorted.DebugCheckSorted().ok());

  index::PostingList duplicate = list;
  duplicate.postings[1].word_pos = 10;  // equal (doc, word_pos)
  EXPECT_FALSE(duplicate.DebugCheckSorted().ok());

  index::PostingList bad_df = list;
  bad_df.doc_frequency = 2;
  EXPECT_FALSE(bad_df.DebugCheckSorted().ok());

  index::PostingList bad_nf = list;
  bad_nf.node_frequency = 4;
  EXPECT_FALSE(bad_nf.DebugCheckSorted().ok());
}

TEST(DebugCheckSortedTest, LoadRebuildsSkipStructures) {
  auto corpus = MakeCorpus(5);
  const std::string path = corpus->dir.path() + "/index.tix";
  ExpectOk(corpus->index->SaveToFile(path));
  index::InvertedIndex loaded =
      Unwrap(index::InvertedIndex::LoadFromFile(path));
  const index::PostingList* list = loaded.Lookup("xq1");
  ASSERT_NE(list, nullptr);
  EXPECT_FALSE(list->doc_offsets.empty());
  EXPECT_EQ(list->skips.empty(), list->size() == 0);
  EXPECT_EQ(list->skips.front().offset, 0u);
}

}  // namespace
}  // namespace tix::exec
