#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "index/inverted_index.h"
#include "query/engine.h"
#include "storage/database.h"
#include "storage/fault.h"
#include "storage/file_manager.h"
#include "tests/test_util.h"
#include "workload/paper_example.h"

namespace tix::storage {
namespace {

using testing::ExpectOk;
using testing::MakeTestDatabase;
using testing::TempDir;
using testing::Unwrap;

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::string out((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return out;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

constexpr char kProbeQuery[] = R"(
    FOR $a IN document("articles.xml")//article//*
    SCORE $a USING foo({"search engine"}, {"internet", "information retrieval"})
    THRESHOLD STOP AFTER 3
    RETURN $a)";

/// Builds the paper-example database + index in `dir` and persists both.
void BuildSavedDatabase(const std::string& dir) {
  auto db = MakeTestDatabase(dir);
  ExpectOk(workload::LoadPaperExample(db.get()));
  const index::InvertedIndex index =
      Unwrap(index::InvertedIndex::Build(db.get()));
  ExpectOk(index.SaveToFile(dir + "/index.tix"));
  ExpectOk(db->Save());
}

/// Opens the saved database, loads the index, and runs the probe query.
/// Every step must either succeed or return a Status — never crash.
Status OpenAndQuery(const std::string& dir, size_t pool_pages = 64,
                    std::shared_ptr<FaultInjector> injector = nullptr) {
  DatabaseOptions options;
  options.buffer_pool_pages = pool_pages;
  options.fault_injector = std::move(injector);
  auto db_result = Database::Open(dir, options);
  if (!db_result.ok()) return db_result.status();
  std::unique_ptr<Database> db = std::move(db_result).value();
  auto index_result = index::InvertedIndex::LoadFromFile(dir + "/index.tix");
  if (!index_result.ok()) return index_result.status();
  index::InvertedIndex index = std::move(index_result).value();
  query::QueryEngine engine(db.get(), &index);
  auto output = engine.ExecuteText(kProbeQuery);
  if (!output.ok()) return output.status();
  auto xml = engine.RenderXml(output.value());
  return xml.ok() ? Status::OK() : xml.status();
}

// ----------------------------------------------------------- FaultInjector

TEST(FaultInjectorTest, DeterministicAcrossRuns) {
  const FaultPolicy policy{/*seed=*/42, 0, 0, 0, /*short_read_at=*/0, 0,
                           /*bit_flip_read_at=*/1};
  std::vector<size_t> flipped_bytes;
  for (int run = 0; run < 2; ++run) {
    FaultInjector injector(policy);
    std::string buffer(kPageSize, '\0');
    size_t len = buffer.size();
    ExpectOk(injector.OnRead("f", buffer.data(), &len));
    EXPECT_EQ(len, buffer.size());
    size_t flipped = buffer.size();
    for (size_t i = 0; i < buffer.size(); ++i) {
      if (buffer[i] != 0) {
        flipped = i;
        break;
      }
    }
    ASSERT_LT(flipped, buffer.size()) << "no bit was flipped";
    flipped_bytes.push_back(flipped);
    EXPECT_EQ(injector.injected(), 1u);
  }
  EXPECT_EQ(flipped_bytes[0], flipped_bytes[1]);
}

TEST(FaultInjectorTest, FailsExactlyTheNthOperation) {
  FaultPolicy policy;
  policy.fail_read_at = 2;
  policy.fail_write_at = 1;
  policy.fail_sync_at = 3;
  FaultInjector injector(policy);

  char byte = 0;
  size_t len = 1;
  ExpectOk(injector.OnRead("f", &byte, &len));             // read #1
  EXPECT_TRUE(injector.OnRead("f", &byte, &len).IsIOError());  // read #2
  ExpectOk(injector.OnRead("f", &byte, &len));             // read #3

  size_t wlen = 1;
  EXPECT_TRUE(injector.OnWrite("f", &wlen).IsIOError());  // write #1
  EXPECT_EQ(wlen, 0u);  // failed write persists nothing

  ExpectOk(injector.OnSync("f"));
  ExpectOk(injector.OnSync("f"));
  EXPECT_TRUE(injector.OnSync("f").IsIOError());

  EXPECT_EQ(injector.reads(), 3u);
  EXPECT_EQ(injector.writes(), 1u);
  EXPECT_EQ(injector.syncs(), 3u);
  EXPECT_EQ(injector.injected(), 3u);
}

// ------------------------------------------------- PagedFile under faults

TEST(PagedFileFaultTest, FailedReadSurfacesAsIOError) {
  TempDir dir;
  FaultPolicy policy;
  policy.fail_read_at = 1;
  PagedFileOptions options;
  options.fault_injector = std::make_shared<FaultInjector>(policy);
  auto file = Unwrap(PagedFile::Create(dir.path() + "/f.tix", options));
  char page[kPageSize] = {};
  ExpectOk(file->WritePage(0, page));
  char read[kPageSize];
  const Status status = file->ReadPage(0, read);
  EXPECT_TRUE(status.IsIOError()) << status.ToString();
  // The next read succeeds: the fault fires exactly once.
  ExpectOk(file->ReadPage(0, read));
}

TEST(PagedFileFaultTest, ShortReadIsCorruption) {
  TempDir dir;
  FaultPolicy policy;
  policy.short_read_at = 1;
  PagedFileOptions options;
  options.fault_injector = std::make_shared<FaultInjector>(policy);
  auto file = Unwrap(PagedFile::Create(dir.path() + "/f.tix", options));
  char page[kPageSize] = {};
  ExpectOk(file->WritePage(0, page));
  char read[kPageSize];
  const Status status = file->ReadPage(0, read);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  EXPECT_NE(status.message().find("f.tix"), std::string::npos)
      << "error must name the file: " << status.ToString();
}

TEST(PagedFileFaultTest, BitFlipPassesWhenVerificationIsOff) {
  TempDir dir;
  FaultPolicy policy;
  policy.seed = 7;
  policy.bit_flip_read_at = 1;
  PagedFileOptions options;
  options.verify_checksums = false;
  options.fault_injector = std::make_shared<FaultInjector>(policy);
  auto file = Unwrap(PagedFile::Create(dir.path() + "/f.tix", options));
  char page[kPageSize] = {};
  ExpectOk(file->WritePage(0, page));
  char read[kPageSize];
  // With verification off the flipped frame is served as-is: silent
  // corruption, which is exactly what checksums exist to prevent.
  ExpectOk(file->ReadPage(0, read));
  EXPECT_EQ(options.fault_injector->injected(), 1u);
}

TEST(PagedFileFaultTest, TornWriteThenReopenReportsCorruption) {
  TempDir dir;
  const std::string path = dir.path() + "/f.tix";
  FaultPolicy policy;
  policy.seed = 5;
  policy.torn_write_at = 1;

  // Learn how many bytes this policy lets through, so the assertions
  // below match the injector's deterministic choice.
  size_t torn_len = kPageFrameSize;
  ExpectOk([&] {
    FaultInjector probe(policy);
    return probe.OnWrite("probe", &torn_len).IsIOError()
               ? Status::OK()
               : Status::Internal("torn write did not fire");
  }());

  {
    PagedFileOptions options;
    options.fault_injector = std::make_shared<FaultInjector>(policy);
    auto file = Unwrap(PagedFile::Create(path, options));
    char page[kPageSize];
    std::memset(page, 'x', kPageSize);
    const Status status = file->WritePage(0, page);
    EXPECT_TRUE(status.IsIOError()) << status.ToString();
  }

  // Reopen without the injector: the file holds only a prefix of the
  // frame (power loss mid-write).
  auto file = Unwrap(PagedFile::Open(path));
  EXPECT_EQ(file->page_count(), 0u);
  char read[kPageSize];
  const Status status = file->ReadPage(0, read);
  if (torn_len > 0) {
    EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  } else {
    // Nothing reached the disk: the page was never allocated and reads
    // as fresh zeros.
    ExpectOk(status);
    EXPECT_EQ(read[0], 0);
  }
}

TEST(PagedFileFaultTest, ReadAndWriteAfterCloseReturnStatus) {
  TempDir dir;
  auto file = Unwrap(PagedFile::Create(dir.path() + "/f.tix"));
  char page[kPageSize] = {};
  ExpectOk(file->WritePage(0, page));
  file->Close();
  EXPECT_TRUE(file->ReadPage(0, page).IsIOError());
  EXPECT_TRUE(file->WritePage(0, page).IsIOError());
  ExpectOk(file->Sync());  // sync of a closed file is a no-op
}

// ------------------------------------------------------ checksums on disk

TEST(PageChecksumTest, OnDiskBitFlipIsCaught) {
  TempDir dir;
  const std::string path = dir.path() + "/f.tix";
  {
    auto file = Unwrap(PagedFile::Create(path));
    char page[kPageSize];
    std::memset(page, 'x', kPageSize);
    ExpectOk(file->WritePage(0, page));
    ExpectOk(file->Sync());
  }
  std::string bytes = ReadFileBytes(path);
  ASSERT_EQ(bytes.size(), kFileHeaderSize + kPageFrameSize);
  // Flip one payload byte behind the checksum's back.
  bytes[kFileHeaderSize + kPageHeaderSize + 100] ^= 0x40;
  WriteFileBytes(path, bytes);

  auto file = Unwrap(PagedFile::Open(path));
  char read[kPageSize];
  const Status status = file->ReadPage(0, read);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  EXPECT_NE(status.message().find("checksum mismatch"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("page 0"), std::string::npos)
      << status.ToString();

  // Opting out of verification serves the flipped payload unchecked.
  PagedFileOptions no_verify;
  no_verify.verify_checksums = false;
  auto unchecked = Unwrap(PagedFile::Open(path, no_verify));
  ExpectOk(unchecked->ReadPage(0, read));
  EXPECT_EQ(read[100], 'x' ^ 0x40);
}

TEST(PageChecksumTest, MisplacedPageIsCaught) {
  TempDir dir;
  const std::string path = dir.path() + "/f.tix";
  {
    auto file = Unwrap(PagedFile::Create(path));
    char page[kPageSize];
    std::memset(page, 'a', kPageSize);
    ExpectOk(file->WritePage(0, page));
    std::memset(page, 'b', kPageSize);
    ExpectOk(file->WritePage(1, page));
  }
  // Simulate a misplaced write: copy frame 0 over frame 1. The payload
  // checksum still matches, but the page number in the header does not.
  std::string bytes = ReadFileBytes(path);
  ASSERT_EQ(bytes.size(), kFileHeaderSize + 2 * kPageFrameSize);
  bytes.replace(kFileHeaderSize + kPageFrameSize, kPageFrameSize,
                bytes.substr(kFileHeaderSize, kPageFrameSize));
  WriteFileBytes(path, bytes);

  auto file = Unwrap(PagedFile::Open(path));
  char read[kPageSize];
  ExpectOk(file->ReadPage(0, read));
  const Status status = file->ReadPage(1, read);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  EXPECT_NE(status.message().find("misplaced write"), std::string::npos)
      << status.ToString();
}

TEST(PageChecksumTest, CorruptFileHeaderIsNotServedAsRaw) {
  TempDir dir;
  const std::string path = dir.path() + "/f.tix";
  {
    auto file = Unwrap(PagedFile::Create(path));
    char page[kPageSize] = {};
    ExpectOk(file->WritePage(0, page));
  }
  std::string bytes = ReadFileBytes(path);
  bytes[5] ^= 0x01;  // corrupt the version field; magic still matches
  WriteFileBytes(path, bytes);
  const auto result = PagedFile::Open(path);
  EXPECT_TRUE(result.status().IsCorruption()) << result.status().ToString();
}

// ------------------------------------------------------- legacy raw files

TEST(LegacyFormatTest, RawFileRoundTripsAndStaysRaw) {
  TempDir dir;
  const std::string path = dir.path() + "/legacy.tix";
  // A pre-v3 file: two raw pages, no header, no frames.
  std::string raw(2 * kPageSize, '\0');
  raw[0] = 'A';
  raw[kPageSize] = 'B';
  WriteFileBytes(path, raw);

  auto file = Unwrap(PagedFile::Open(path));
  EXPECT_FALSE(file->checksummed());
  EXPECT_EQ(file->page_count(), 2u);
  char read[kPageSize];
  ExpectOk(file->ReadPage(0, read));
  EXPECT_EQ(read[0], 'A');
  ExpectOk(file->ReadPage(1, read));
  EXPECT_EQ(read[0], 'B');

  // Writing through keeps the file raw so older builds can still read it.
  char page[kPageSize];
  std::memset(page, 'C', kPageSize);
  ExpectOk(file->WritePage(2, page));
  file->Close();
  const std::string after = ReadFileBytes(path);
  EXPECT_EQ(after.size(), 3 * kPageSize);
  EXPECT_EQ(after[0], 'A');
  EXPECT_EQ(after[2 * kPageSize], 'C');
}

TEST(LegacyFormatTest, V2DatabaseOpensAndQueriesIdentically) {
  TempDir dir;
  BuildSavedDatabase(dir.path());

  // Baseline: results from the v3 database.
  DatabaseOptions options;
  auto db = Unwrap(Database::Open(dir.path(), options));
  index::InvertedIndex index =
      Unwrap(index::InvertedIndex::LoadFromFile(dir.path() + "/index.tix"));
  query::QueryEngine engine(db.get(), &index);
  const query::QueryOutput baseline = Unwrap(engine.ExecuteText(kProbeQuery));
  db.reset();

  // Strip the node and text files down to the legacy raw layout: drop
  // the 16-byte file header and each frame's 16-byte page header.
  for (const char* name : {"/nodes.tix", "/text.tix"}) {
    const std::string path = dir.path() + name;
    const std::string v3 = ReadFileBytes(path);
    ASSERT_GE(v3.size(), kFileHeaderSize);
    ASSERT_EQ((v3.size() - kFileHeaderSize) % kPageFrameSize, 0u);
    std::string raw;
    for (size_t offset = kFileHeaderSize; offset < v3.size();
         offset += kPageFrameSize) {
      raw += v3.substr(offset + kPageHeaderSize, kPageSize);
    }
    WriteFileBytes(path, raw);
  }

  auto legacy_db = Unwrap(Database::Open(dir.path(), options));
  EXPECT_FALSE(legacy_db->node_store().file()->checksummed());
  query::QueryEngine legacy_engine(legacy_db.get(), &index);
  const query::QueryOutput legacy = Unwrap(legacy_engine.ExecuteText(kProbeQuery));

  ASSERT_EQ(legacy.results.size(), baseline.results.size());
  for (size_t i = 0; i < baseline.results.size(); ++i) {
    EXPECT_EQ(legacy.results[i].node, baseline.results[i].node);
    EXPECT_DOUBLE_EQ(legacy.results[i].score, baseline.results[i].score);
  }
}

// -------------------------------------------------------- atomic replace

TEST(AtomicWriteFileTest, ReplacesContentAndLeavesNoTemp) {
  TempDir dir;
  const std::string path = dir.path() + "/blob";
  WriteFileBytes(path, "old content");
  ExpectOk(AtomicWriteFile(path, "new content"));
  EXPECT_EQ(ReadFileBytes(path), "new content");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(AtomicWriteFileTest, CreatesMissingFile) {
  TempDir dir;
  const std::string path = dir.path() + "/fresh";
  ExpectOk(AtomicWriteFile(path, "data"));
  EXPECT_EQ(ReadFileBytes(path), "data");
}

// ----------------------------------------------- database-level failures

TEST(DatabaseFaultTest, TruncatedNodeFileFailsOpenWithCorruption) {
  TempDir dir;
  BuildSavedDatabase(dir.path());
  const std::string path = dir.path() + "/nodes.tix";
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GE(bytes.size(), kFileHeaderSize + kPageFrameSize);
  // Drop the last whole frame: the catalog's node count no longer fits.
  WriteFileBytes(path,
                 bytes.substr(0, bytes.size() - kPageFrameSize));
  const auto result = Database::Open(dir.path());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption()) << result.status().ToString();
  EXPECT_NE(result.status().message().find("truncated"), std::string::npos);
}

TEST(DatabaseFaultTest, InjectedReadErrorPropagatesThroughEngine) {
  TempDir dir;
  BuildSavedDatabase(dir.path());

  // First pass: count the reads a clean open + query performs. A tiny
  // pool forces query-time page reads instead of pure cache hits.
  auto counting = std::make_shared<FaultInjector>(FaultPolicy{});
  ExpectOk(OpenAndQuery(dir.path(), /*pool_pages=*/2, counting));
  const uint64_t reads_total = counting->reads();

  DatabaseOptions probe_options;
  probe_options.buffer_pool_pages = 2;
  probe_options.fault_injector = std::make_shared<FaultInjector>(FaultPolicy{});
  {
    auto db = Unwrap(Database::Open(dir.path(), probe_options));
    EXPECT_GT(reads_total, probe_options.fault_injector->reads())
        << "query performed no reads; shrink the pool further";
  }
  const uint64_t reads_during_open = probe_options.fault_injector->reads();

  // Second pass: fail the first read that happens *after* Open, i.e.
  // during query execution. The error must come back as a Status from
  // the engine — not an abort.
  FaultPolicy policy;
  policy.fail_read_at = reads_during_open + 1;
  const Status status = OpenAndQuery(
      dir.path(), /*pool_pages=*/2, std::make_shared<FaultInjector>(policy));
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsIOError()) << status.ToString();
  EXPECT_NE(status.message().find("injected"), std::string::npos)
      << status.ToString();
}

// ----------------------------------------------- index blob truncation

TEST(IndexBlobTest, EveryPrefixTruncationFailsCleanly) {
  TempDir dir;
  BuildSavedDatabase(dir.path());
  const std::string path = dir.path() + "/index.tix";
  const std::string blob = ReadFileBytes(path);
  ASSERT_GT(blob.size(), 16u);

  // Table-driven: every proper prefix must load as an error (typically
  // Corruption), and the full blob must load cleanly. No length may
  // crash or hang.
  for (size_t len = 0; len < blob.size(); ++len) {
    WriteFileBytes(path, blob.substr(0, len));
    const auto result = index::InvertedIndex::LoadFromFile(path);
    EXPECT_FALSE(result.ok()) << "prefix of length " << len
                              << " parsed as a complete index";
  }
  WriteFileBytes(path, blob);
  const auto full = index::InvertedIndex::LoadFromFile(path);
  ExpectOk(full.status());
}

TEST(IndexBlobTest, HeaderBitFlipsNeverCrash) {
  TempDir dir;
  BuildSavedDatabase(dir.path());
  const std::string path = dir.path() + "/index.tix";
  const std::string blob = ReadFileBytes(path);
  // The first bytes cover the magic, the skip-block interval, and the
  // tokenizer options; flip every bit of each in turn.
  const size_t header_bytes = std::min<size_t>(blob.size(), 24);
  for (size_t byte = 0; byte < header_bytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = blob;
      mutated[byte] ^= static_cast<char>(1 << bit);
      WriteFileBytes(path, mutated);
      const auto result = index::InvertedIndex::LoadFromFile(path);
      // Either a clean load (the flip landed somewhere harmless, e.g. a
      // tokenizer flag) or an error Status. The point is: no crash.
      if (!result.ok()) {
        EXPECT_FALSE(result.status().ok());
      }
    }
  }
}

// ------------------------------------------------------- corruption fuzz

TEST(DatabaseFuzzTest, RandomCorruptionNeverCrashes) {
  TempDir dir;
  BuildSavedDatabase(dir.path());

  const std::vector<std::string> files = {
      dir.path() + "/nodes.tix", dir.path() + "/text.tix",
      dir.path() + "/catalog.tix", dir.path() + "/index.tix"};
  std::vector<std::string> pristine;
  pristine.reserve(files.size());
  for (const std::string& file : files) {
    pristine.push_back(ReadFileBytes(file));
  }

  // Sanity: the uncorrupted database opens and answers the probe query.
  ExpectOk(OpenAndQuery(dir.path()));

  // Deterministic xorshift64* so a failure reproduces byte-for-byte.
  uint64_t rng = 0x9E3779B97F4A7C15ULL;
  const auto next = [&rng]() {
    rng ^= rng >> 12;
    rng ^= rng << 25;
    rng ^= rng >> 27;
    return rng * 0x2545F4914F6CDD1DULL;
  };

  constexpr int kIterations = 600;
  int opened_ok = 0;
  int rejected = 0;
  for (int iteration = 0; iteration < kIterations; ++iteration) {
    const size_t target = next() % files.size();
    std::string mutated = pristine[target];
    const uint64_t kind = next() % 3;
    SCOPED_TRACE("iteration " + std::to_string(iteration) + " on " +
                 files[target] + " kind " + std::to_string(kind));
    if (mutated.empty() || kind == 1) {
      // Truncate to a random (possibly zero) length.
      mutated.resize(mutated.empty() ? 0 : next() % mutated.size());
    } else if (kind == 0) {
      // Flip 1-8 random bits.
      const int flips = 1 + static_cast<int>(next() % 8);
      for (int f = 0; f < flips; ++f) {
        const uint64_t bit = next() % (mutated.size() * 8);
        mutated[bit / 8] ^= static_cast<char>(1u << (bit % 8));
      }
    } else {
      // Append random garbage.
      const size_t extra = 1 + next() % 64;
      for (size_t i = 0; i < extra; ++i) {
        mutated.push_back(static_cast<char>(next() & 0xFF));
      }
    }
    WriteFileBytes(files[target], mutated);

    // The only acceptable outcomes are success or an error Status.
    // Anything else — abort, UB, hang — fails the test (and the
    // sanitizer jobs run this same test under ASan/UBSan and TSan).
    const Status status = OpenAndQuery(dir.path());
    if (status.ok()) {
      ++opened_ok;
    } else {
      ++rejected;
      EXPECT_FALSE(status.message().empty());
    }

    WriteFileBytes(files[target], pristine[target]);
  }
  // The harness must have actually exercised both outcomes: plenty of
  // rejections (most mutations are fatal) and at least one clean pass
  // would be suspicious to *require*, but zero rejections means the
  // mutator is broken.
  EXPECT_GT(rejected, kIterations / 2);
  ExpectOk(OpenAndQuery(dir.path()));
}

}  // namespace
}  // namespace tix::storage
