// ThreadPool shutdown-semantics tests. The pool's contract — graceful
// drain on Shutdown, idempotent double-shutdown, broken-promise
// rejection after stop — is what the resident server leans on to stop
// cleanly with sessions still live, so each clause gets a test here and
// the whole file runs under TSan via scripts/check_sanitizers.sh.

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace tix {
namespace {

TEST(ThreadPoolTest, DrainsQueuedWorkOnShutdown) {
  std::atomic<int> ran{0};
  ThreadPool pool(2);
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&ran] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.Shutdown();
  // Graceful drain: every task queued before Shutdown ran to completion.
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(pool.tasks_completed(), 64u);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // No explicit Shutdown: the destructor must drain, not drop.
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolTest, DoubleShutdownIsIdempotent) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { return 7; });
  pool.Shutdown();
  pool.Shutdown();  // second call must be a no-op, not a crash or hang
  EXPECT_EQ(future.get(), 7);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFailsLoudly) {
  ThreadPool pool(1);
  pool.Shutdown();
  auto future = pool.Submit([] { return 1; });
  // The task is rejected; the future holds a broken promise.
  EXPECT_THROW(future.get(), std::future_error);
}

TEST(ThreadPoolTest, ConcurrentSubmitDuringShutdown) {
  // Hammer Submit from several threads while the main thread calls
  // Shutdown. Every accepted task must run exactly once; every rejected
  // submission must surface as a broken promise — and the race itself is
  // what TSan checks when scripts/check_sanitizers.sh runs this file.
  std::atomic<int> ran{0};
  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  auto pool = std::make_unique<ThreadPool>(2);

  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 200;
  std::atomic<bool> go{false};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        auto future =
            pool->Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        try {
          future.get();
          accepted.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::future_error&) {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  pool->Shutdown();
  for (auto& thread : submitters) thread.join();

  EXPECT_EQ(accepted.load() + rejected.load(), kSubmitters * kPerThread);
  EXPECT_EQ(ran.load(), accepted.load());
  EXPECT_EQ(pool->tasks_completed(), static_cast<uint64_t>(accepted.load()));
}

}  // namespace
}  // namespace tix
