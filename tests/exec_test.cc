#include <algorithm>
#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "algebra/pick.h"
#include "algebra/reference_eval.h"
#include "common/random.h"
#include "exec/composite.h"
#include "exec/gen_meet.h"
#include "exec/occurrence_stream.h"
#include "exec/phrase_query.h"
#include "exec/pick_operator.h"
#include "exec/structural_join.h"
#include "exec/term_join.h"
#include "exec/threshold_operator.h"
#include "index/inverted_index.h"
#include "tests/test_util.h"
#include "xml/parser.h"
#include "workload/corpus.h"
#include "workload/paper_example.h"

namespace tix::exec {
namespace {

using testing::ExpectOk;
using testing::MakeTestDatabase;
using testing::TempDir;
using testing::Unwrap;

/// Canonical form for output comparison: sorted by node id.
std::vector<ScoredElement> Normalized(std::vector<ScoredElement> elements) {
  std::sort(elements.begin(), elements.end(),
            [](const ScoredElement& a, const ScoredElement& b) {
              return a.node < b.node;
            });
  return elements;
}

void ExpectSameResults(const std::vector<ScoredElement>& actual,
                       const std::vector<algebra::ScoredNodeResult>& expected,
                       const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].node, expected[i].node) << label << " @" << i;
    EXPECT_EQ(actual[i].counts, expected[i].counts) << label << " @" << i;
    EXPECT_NEAR(actual[i].score, expected[i].score, 1e-9)
        << label << " node " << actual[i].node;
  }
}

void ExpectSameElements(const std::vector<ScoredElement>& a,
                        const std::vector<ScoredElement>& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node) << label << " @" << i;
    EXPECT_EQ(a[i].counts, b[i].counts) << label << " @" << i;
    EXPECT_NEAR(a[i].score, b[i].score, 1e-9) << label << " @" << i;
  }
}

// ------------------------------------------------- paper-example fixture

class PaperExampleExec : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTestDatabase(dir_.path());
    ExpectOk(workload::LoadPaperExample(db_.get()));
    index_ = std::make_unique<index::InvertedIndex>(
        Unwrap(index::InvertedIndex::Build(db_.get())));
    predicate_ = algebra::IrPredicate::FooStyle(
        {"search engine"}, {"internet", "information retrieval"});
    simple_ = std::make_unique<algebra::WeightedCountScorer>(
        predicate_.Weights());
    complex_ = std::make_unique<algebra::ComplexProximityScorer>(
        predicate_.Weights());
  }

  TempDir dir_;
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<index::InvertedIndex> index_;
  algebra::IrPredicate predicate_;
  std::unique_ptr<algebra::Scorer> simple_;
  std::unique_ptr<algebra::Scorer> complex_;
};

TEST_F(PaperExampleExec, TermJoinMatchesReferenceSimple) {
  TermJoin join(db_.get(), index_.get(), &predicate_, simple_.get());
  const auto actual = Normalized(Unwrap(join.Run()));
  const auto expected = Unwrap(algebra::ReferenceScoreAllElements(
      db_.get(), predicate_, *simple_));
  ExpectSameResults(actual, expected, "simple");
  EXPECT_GT(join.stats().occurrences, 4u);
  EXPECT_EQ(join.stats().outputs, actual.size());
}

TEST_F(PaperExampleExec, TermJoinMatchesReferenceComplex) {
  TermJoin join(db_.get(), index_.get(), &predicate_, complex_.get());
  const auto actual = Normalized(Unwrap(join.Run()));
  const auto expected = Unwrap(algebra::ReferenceScoreAllElements(
      db_.get(), predicate_, *complex_));
  ExpectSameResults(actual, expected, "complex");
}

TEST_F(PaperExampleExec, EnhancedTermJoinSameOutputFewerFetches) {
  TermJoin plain(db_.get(), index_.get(), &predicate_, complex_.get());
  const auto plain_out = Normalized(Unwrap(plain.Run()));
  TermJoinOptions options;
  options.enhanced = true;
  TermJoin enhanced(db_.get(), index_.get(), &predicate_, complex_.get(),
                    options);
  const auto enhanced_out = Normalized(Unwrap(enhanced.Run()));
  ExpectSameElements(enhanced_out, plain_out, "enhanced-vs-plain");
  EXPECT_LT(enhanced.stats().record_fetches, plain.stats().record_fetches);
}

TEST_F(PaperExampleExec, LengthNormalizedScorerAgreesAcrossMethods) {
  // The BM25-style scorer needs the element span from ScoreContext;
  // every method must fill it identically.
  algebra::LengthNormalizedScorer scorer(predicate_.Weights(),
                                         {1.2, 1.0, 1.0}, 40.0);
  TermJoin join(db_.get(), index_.get(), &predicate_, &scorer);
  const auto tj = Normalized(Unwrap(join.Run()));
  const auto reference = Unwrap(algebra::ReferenceScoreAllElements(
      db_.get(), predicate_, scorer));
  ExpectSameResults(tj, reference, "bm25-termjoin-vs-reference");
  GeneralizedMeet meet(db_.get(), index_.get(), &predicate_, &scorer);
  ExpectSameElements(Unwrap(meet.Run()), tj, "bm25-genmeet");
  Comp2 comp2(db_.get(), index_.get(), &predicate_, &scorer);
  ExpectSameElements(Unwrap(comp2.Run()), tj, "bm25-comp2");
}

TEST_F(PaperExampleExec, GenMeetMatchesTermJoin) {
  for (const algebra::Scorer* scorer :
       {simple_.get(), complex_.get()}) {
    TermJoin join(db_.get(), index_.get(), &predicate_, scorer);
    const auto tj = Normalized(Unwrap(join.Run()));
    GeneralizedMeet meet(db_.get(), index_.get(), &predicate_, scorer);
    const auto gm = Unwrap(meet.Run());
    ExpectSameElements(gm, tj, scorer->is_complex() ? "complex" : "simple");
  }
}

TEST_F(PaperExampleExec, CompositesMatchTermJoin) {
  for (const algebra::Scorer* scorer : {simple_.get(), complex_.get()}) {
    const std::string label = scorer->is_complex() ? "complex" : "simple";
    TermJoin join(db_.get(), index_.get(), &predicate_, scorer);
    const auto tj = Normalized(Unwrap(join.Run()));
    Comp1 comp1(db_.get(), index_.get(), &predicate_, scorer);
    ExpectSameElements(Unwrap(comp1.Run()), tj, "comp1-" + label);
    Comp2 comp2(db_.get(), index_.get(), &predicate_, scorer);
    ExpectSameElements(Unwrap(comp2.Run()), tj, "comp2-" + label);
    EXPECT_GE(comp2.stats().scanned_records, db_->num_nodes());
  }
}

TEST_F(PaperExampleExec, TopResultIsTheSearchChapter) {
  // Query 1/2 sanity: the highest-scoring non-root element under simple
  // scoring contains the search-and-retrieval content (the paper's
  // "chapter #a10 wins" motivation).
  TermJoin join(db_.get(), index_.get(), &predicate_, simple_.get());
  auto results = Unwrap(join.Run());
  ThresholdOperator threshold(algebra::ThresholdSpec{
      std::nullopt, std::optional<size_t>(3)});
  for (ScoredElement& element : results) threshold.Push(std::move(element));
  const auto top = threshold.Finish();
  ASSERT_GE(top.size(), 2u);
  // Top is the article root (it contains everything); the runner-up must
  // be the chapter.
  const storage::NodeRecord top2 = Unwrap(db_->GetNode(top[1].node));
  EXPECT_EQ(db_->TagName(top2.tag_id), "chapter");
}

TEST_F(PaperExampleExec, StatsAreMeaningful) {
  // TermJoin: occurrences equals the total matches of all three phrases;
  // every output element required at least one push; the stack never
  // grows beyond the document depth.
  TermJoin join(db_.get(), index_.get(), &predicate_, complex_.get());
  const auto out = Unwrap(join.Run());
  const TermJoinStats& stats = join.stats();
  EXPECT_GT(stats.occurrences, 5u);
  EXPECT_EQ(stats.outputs, out.size());
  EXPECT_EQ(stats.stack_pushes, out.size());  // each element pops once
  EXPECT_LE(stats.max_stack_depth, 6u);       // Figure 1 is 4 levels deep
  EXPECT_GT(stats.record_fetches, 0u);

  GeneralizedMeet meet(db_.get(), index_.get(), &predicate_, complex_.get());
  Unwrap(meet.Run());
  // GenMeet walks the full chain per occurrence: strictly more chain
  // steps than TermJoin pushes.
  EXPECT_GT(meet.stats().chain_steps, stats.stack_pushes);
  EXPECT_EQ(meet.stats().outputs, out.size());

  Comp1 comp1(db_.get(), index_.get(), &predicate_, complex_.get());
  Unwrap(comp1.Run());
  EXPECT_GT(comp1.stats().union_comparisons, 0u);
  EXPECT_EQ(comp1.stats().outputs, out.size());

  Comp2 comp2(db_.get(), index_.get(), &predicate_, complex_.get());
  Unwrap(comp2.Run());
  EXPECT_GE(comp2.stats().scanned_records, db_->num_nodes());
  EXPECT_EQ(comp2.stats().outputs, out.size());
}

TEST_F(PaperExampleExec, RerunningTermJoinIsDeterministic) {
  TermJoin first(db_.get(), index_.get(), &predicate_, simple_.get());
  TermJoin second(db_.get(), index_.get(), &predicate_, simple_.get());
  EXPECT_EQ(Unwrap(first.Run()), Unwrap(second.Run()));
}

// ----------------------------------------------------------- OccStreams

TEST_F(PaperExampleExec, SingleTermStream) {
  TermOccurrenceStream stream(index_->Lookup("internet"));
  const auto all = stream.DrainAll();
  EXPECT_EQ(all.size(), index_->TermFrequency("internet"));
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_TRUE(all[i - 1].doc < all[i].doc ||
                (all[i - 1].doc == all[i].doc &&
                 all[i - 1].word_pos < all[i].word_pos));
  }
}

TEST_F(PaperExampleExec, UnknownTermStreamIsEmpty) {
  TermOccurrenceStream stream(index_->Lookup("zzzmissing"));
  EXPECT_FALSE(stream.Peek().has_value());
}

TEST_F(PaperExampleExec, PhraseFinderFindsExactPhrases) {
  PhraseFinderStream stream({index_->Lookup("search"),
                             index_->Lookup("engine")});
  const auto occurrences = stream.DrainAll();
  // "Search Engine Basics" + "search engine NewsInEssence".
  EXPECT_EQ(occurrences.size(), 2u);
  PhraseFinderStream reversed({index_->Lookup("engine"),
                               index_->Lookup("search")});
  EXPECT_TRUE(reversed.DrainAll().empty());  // order matters
}

TEST_F(PaperExampleExec, PhraseFinderThreeTerms) {
  PhraseFinderStream stream({index_->Lookup("information"),
                             index_->Lookup("retrieval"),
                             index_->Lookup("techniques")});
  // "Information Retrieval Techniques" (title) and "information
  // retrieval techniques are also being incorporated".
  EXPECT_EQ(stream.DrainAll().size(), 2u);
}

TEST_F(PaperExampleExec, GallopingPhraseFinderMatchesLinear) {
  for (const auto& terms :
       {std::vector<std::string>{"search", "engine"},
        std::vector<std::string>{"information", "retrieval", "techniques"},
        std::vector<std::string>{"the", "internet"}}) {
    std::vector<const index::PostingList*> lists;
    for (const std::string& term : terms) lists.push_back(index_->Lookup(term));
    PhraseFinderStream linear(lists, /*galloping=*/false);
    PhraseFinderStream galloping(lists, /*galloping=*/true);
    const auto linear_out = linear.DrainAll();
    const auto galloping_out = galloping.DrainAll();
    ASSERT_EQ(linear_out.size(), galloping_out.size());
    for (size_t i = 0; i < linear_out.size(); ++i) {
      EXPECT_EQ(linear_out[i].text_node, galloping_out[i].text_node);
      EXPECT_EQ(linear_out[i].word_pos, galloping_out[i].word_pos);
    }
  }
}

TEST_F(PaperExampleExec, PhraseFinderMatchesComp3) {
  for (const auto& phrase :
       {std::vector<std::string>{"search", "engine"},
        std::vector<std::string>{"information", "retrieval"},
        std::vector<std::string>{"internet", "technologies"},
        std::vector<std::string>{"missing", "phrase"}}) {
    PhraseFinderQuery finder(db_.get(), index_.get(), phrase);
    Comp3 composite(db_.get(), index_.get(), phrase);
    EXPECT_EQ(Unwrap(finder.Run()), Unwrap(composite.Run()))
        << phrase[0] << " " << phrase[1];
  }
}

TEST_F(PaperExampleExec, PhraseFinderQueryUnknownTerm) {
  // Any unknown term (nullptr posting list) makes the phrase empty,
  // whatever its position in the phrase.
  PhraseFinderQuery tail(db_.get(), index_.get(), {"search", "zzzmissing"});
  EXPECT_TRUE(Unwrap(tail.Run()).empty());
  PhraseFinderQuery head(db_.get(), index_.get(), {"zzzmissing", "engine"});
  EXPECT_TRUE(Unwrap(head.Run()).empty());
  PhraseFinderQuery alone(db_.get(), index_.get(), {"zzzmissing"});
  EXPECT_TRUE(Unwrap(alone.Run()).empty());
}

TEST_F(PaperExampleExec, PhraseFinderQuerySingleTerm) {
  // A one-word "phrase" degenerates to the term's posting list, grouped
  // by text node.
  PhraseFinderQuery finder(db_.get(), index_.get(), {"search"});
  const auto out = Unwrap(finder.Run());
  const index::PostingList* list = index_->Lookup("search");
  ASSERT_NE(list, nullptr);
  uint64_t total = 0;
  for (const PhraseResult& result : out) total += result.count;
  EXPECT_EQ(total, list->size());
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].text_node, out[i].text_node);
  }
}

TEST_F(PaperExampleExec, PhraseFinderQueryDocRangeMidList) {
  // A range starting past the first document must yield exactly the
  // full run's tail — the stream seeks into the posting lists rather
  // than scanning from the front.
  for (const auto& phrase : {std::vector<std::string>{"search", "engine"},
                             std::vector<std::string>{"the"}}) {
    PhraseFinderQuery full(db_.get(), index_.get(), phrase);
    std::vector<PhraseResult> expected;
    for (const PhraseResult& result : Unwrap(full.Run())) {
      if (result.doc >= 1) expected.push_back(result);
    }
    PhraseFinderQuery ranged(db_.get(), index_.get(), phrase, DocRange{1});
    EXPECT_EQ(Unwrap(ranged.Run()), expected) << phrase[0];
    PhraseFinderQuery empty_range(db_.get(), index_.get(), phrase,
                                  DocRange{1, 1});
    EXPECT_TRUE(Unwrap(empty_range.Run()).empty());
  }
}

TEST(PhraseStopwordTest, MethodsAgreeOnStopwordTailedText) {
  // The phrase sits mid-text with stopwords before, between-adjacent and
  // after; raw positions keep "search engine" adjacent and the fixed
  // num_words sizes Comp3's verification window over the whole text.
  TempDir dir;
  storage::DatabaseOptions options;
  options.buffer_pool_pages = 64;
  options.tokenizer.remove_stopwords = true;
  auto db = Unwrap(storage::Database::Create(dir.path(), options));
  const auto document = Unwrap(xml::ParseXml(
      "<doc><p>the search engine of the and</p>"
      "<p>search of engine</p><p>of the and</p></doc>",
      "stops.xml"));
  Unwrap(db->AddDocument(document));
  index::InvertedIndex index = Unwrap(index::InvertedIndex::Build(db.get()));

  const std::vector<std::string> phrase = {"search", "engine"};
  PhraseFinderQuery finder(db.get(), &index, phrase);
  Comp3 composite(db.get(), &index, phrase);
  const auto finder_out = Unwrap(finder.Run());
  EXPECT_EQ(finder_out, Unwrap(composite.Run()));
  // Only the first paragraph has the terms adjacent ("search of engine"
  // leaves a raw-position hole).
  ASSERT_EQ(finder_out.size(), 1u);
  EXPECT_EQ(finder_out[0].count, 1u);
}

// ------------------------------------------------------- Structural join

TEST_F(PaperExampleExec, SemiJoins) {
  const auto sections = Unwrap(TagScan(db_.get(), "section"));
  const auto paragraphs = Unwrap(TagScan(db_.get(), "p"));
  ASSERT_EQ(sections.size(), 3u);
  // Sections containing at least one <p>: all three.
  EXPECT_EQ(SemiJoinAncestors(sections, paragraphs).size(), 3u);
  // Paragraphs within sections: 1 + 1 + 3 (the chapter-level paragraphs
  // of the first two chapters hang directly under <chapter>).
  EXPECT_EQ(SemiJoinDescendants(paragraphs, sections).size(), 5u);
  // Pairs: each section with each contained paragraph.
  const auto pairs = StackTreeAncPairs(sections, paragraphs);
  EXPECT_EQ(pairs.size(), 5u);
  for (const auto& [ancestor, descendant] : pairs) {
    EXPECT_LT(ancestor.start, descendant.start);
    EXPECT_GT(ancestor.end, descendant.end);
  }
}

TEST_F(PaperExampleExec, SemiJoinOrSelf) {
  const auto sections = Unwrap(TagScan(db_.get(), "section"));
  EXPECT_EQ(SemiJoinDescendants(sections, sections, /*or_self=*/true).size(),
            3u);
  EXPECT_TRUE(SemiJoinDescendants(sections, sections, false).empty());
}

// -------------------------------------------------------------- Threshold

TEST(ThresholdOperatorTest, MatchesReferenceSemantics) {
  Random rng(77);
  std::vector<ScoredElement> elements;
  for (int i = 0; i < 500; ++i) {
    ScoredElement element;
    element.node = static_cast<storage::NodeId>(i);
    element.doc = 0;
    element.start = static_cast<uint32_t>(i * 3);
    element.end = element.start + 1;
    element.score = rng.NextDouble() * 10.0;
    elements.push_back(element);
  }
  algebra::ThresholdSpec spec;
  spec.min_score = 4.0;
  spec.top_k = 25;

  ThresholdOperator op(spec);
  for (const ScoredElement& element : elements) op.Push(element);
  const auto got = op.Finish();

  const auto expected_idx = algebra::ApplyThreshold(
      elements.size(), [&](size_t i) { return elements[i].score; }, spec);
  ASSERT_EQ(got.size(), expected_idx.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].node, elements[expected_idx[i]].node) << i;
  }
  EXPECT_EQ(op.pushed(), elements.size());
  EXPECT_GT(op.dropped_by_score(), 0u);
}

TEST(ThresholdOperatorTest, TopKZeroAndNoFilter) {
  ThresholdOperator zero(algebra::ThresholdSpec{std::nullopt,
                                                std::optional<size_t>(0)});
  ScoredElement element;
  element.score = 1.0;
  zero.Push(element);
  EXPECT_TRUE(zero.Finish().empty());

  ThresholdOperator all(algebra::ThresholdSpec{});
  for (int i = 0; i < 10; ++i) {
    element.node = static_cast<storage::NodeId>(i);
    element.score = i;
    all.Push(element);
  }
  const auto out = all.Finish();
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(out.front().node, 9u);
}

// Tie-breaking property: with heavily tied scores, the heap-based
// operator and the reference ApplyThreshold must keep the same
// elements — both resolve score ties by document order (doc, start),
// whatever the push/input order was.
class ThresholdTieTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ThresholdTieTest, TiedScoresKeepDocumentOrder) {
  Random rng(GetParam());
  std::vector<ScoredElement> elements;
  for (int i = 0; i < 200; ++i) {
    ScoredElement element;
    element.node = static_cast<storage::NodeId>(i);
    // Unique (doc, start) so document order is a strict total order.
    element.doc = static_cast<storage::DocId>(i % 3);
    element.start = static_cast<uint32_t>(i);
    element.end = element.start + 1;
    // Four distinct score values -> ties everywhere.
    element.score = 1.0 + static_cast<double>(rng.NextUint64() % 4);
    elements.push_back(element);
  }
  // Shuffle so arrival order disagrees with document order.
  for (size_t i = elements.size(); i > 1; --i) {
    std::swap(elements[i - 1], elements[rng.NextUint64() % i]);
  }

  algebra::ThresholdSpec spec;
  spec.min_score = 2.0;
  spec.top_k = 17;

  ThresholdOperator op(spec);
  for (const ScoredElement& element : elements) op.Push(element);
  const auto got = op.Finish();

  const auto expected_idx = algebra::ApplyThreshold(
      elements.size(), [&](size_t i) { return elements[i].score; }, spec,
      [&](size_t a, size_t b) {
        return DocumentOrderLess(elements[a], elements[b]);
      });
  ASSERT_EQ(got.size(), expected_idx.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].node, elements[expected_idx[i]].node) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThresholdTieTest,
                         ::testing::Range<uint64_t>(0, 20));

// ------------------------------------------------------------------ Pick

TEST(PickOperatorTest, MatchesReferenceOnFigure6) {
  // Rebuild Figure 6's scored tree (see algebra_test for the shape).
  auto root = std::make_unique<algebra::ScoredTreeNode>(1);
  root->set_score(5.6);
  root->AddChild(2)->set_score(0.6);
  algebra::ScoredTreeNode* chapter = root->AddChild(10);
  chapter->set_score(5.0);
  algebra::ScoredTreeNode* s1 = chapter->AddChild(12);
  s1->set_score(0.8);
  s1->AddChild(13)->set_score(0.8);
  algebra::ScoredTreeNode* s2 = chapter->AddChild(14);
  s2->set_score(0.6);
  s2->AddChild(15)->set_score(0.6);
  algebra::ScoredTreeNode* s3 = chapter->AddChild(16);
  s3->set_score(3.6);
  s3->AddChild(18)->set_score(0.8);
  s3->AddChild(19)->set_score(1.4);
  s3->AddChild(20)->set_score(1.4);
  const algebra::ScoredTree tree(std::move(root));

  algebra::PickFooCriterion criterion;
  PickOperator op(&criterion);
  const auto picked = Unwrap(op.Run(FlattenForPick(tree)));
  EXPECT_EQ(picked, algebra::ReferencePick(tree, criterion));
  EXPECT_EQ(picked, (std::vector<storage::NodeId>{10}));
  EXPECT_EQ(op.stats().input_nodes, 11u);
}

TEST(PickOperatorTest, RejectsMalformedInput) {
  algebra::PickFooCriterion criterion;
  PickOperator op(&criterion);
  // Level jump of 2 is not a pre-order tree.
  std::vector<PickEntry> bad = {{1, 0, 0.0}, {2, 2, 1.0}};
  EXPECT_TRUE(op.Run(bad).status().IsInvalidArgument());
  // Second root.
  PickOperator op2(&criterion);
  std::vector<PickEntry> two_roots = {{1, 0, 0.0}, {2, 0, 1.0}};
  EXPECT_TRUE(op2.Run(two_roots).status().IsInvalidArgument());
  // Non-root start.
  PickOperator op3(&criterion);
  std::vector<PickEntry> deep = {{1, 3, 0.0}};
  EXPECT_TRUE(op3.Run(deep).status().IsInvalidArgument());
  // Empty input is fine.
  PickOperator op4(&criterion);
  EXPECT_TRUE(Unwrap(op4.Run({})).empty());
}

/// Property test: PickOperator agrees with ReferencePick on random
/// scored trees under both shipped criteria.
class PickPropertyTest : public ::testing::TestWithParam<uint64_t> {};

std::unique_ptr<algebra::ScoredTreeNode> RandomScoredTree(Random* rng,
                                                          int depth,
                                                          uint32_t* next_id) {
  auto node = std::make_unique<algebra::ScoredTreeNode>((*next_id)++);
  node->set_score(rng->NextDouble() * 2.0);
  const uint32_t children = depth > 0 ? rng->NextUint32(4) : 0;
  for (uint32_t i = 0; i < children; ++i) {
    node->AddChild(RandomScoredTree(rng, depth - 1, next_id));
  }
  return node;
}

TEST_P(PickPropertyTest, AgreesWithReference) {
  Random rng(GetParam());
  uint32_t next_id = 1;
  const algebra::ScoredTree tree(RandomScoredTree(&rng, 6, &next_id));

  const algebra::PickFooCriterion foo(0.8, 0.5);
  const algebra::LevelParityPickCriterion parity(0.7, 0.3);
  for (const algebra::PickCriterion* criterion :
       std::initializer_list<const algebra::PickCriterion*>{&foo, &parity}) {
    PickOperator op(criterion);
    const auto picked = Unwrap(op.Run(FlattenForPick(tree)));
    EXPECT_EQ(picked, algebra::ReferencePick(tree, *criterion))
        << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PickPropertyTest,
                         ::testing::Range<uint64_t>(0, 40));

// --------------------------------------- equivalence on random corpora

struct CorpusCase {
  uint64_t seed;
  bool complex;
};

class CorpusEquivalenceTest
    : public ::testing::TestWithParam<CorpusCase> {};

TEST_P(CorpusEquivalenceTest, AllMethodsAgree) {
  const CorpusCase param = GetParam();
  TempDir dir;
  auto db = MakeTestDatabase(dir.path(), 512);
  workload::CorpusOptions options;
  options.seed = param.seed;
  options.num_articles = 4;
  options.min_words_per_paragraph = 10;
  options.max_words_per_paragraph = 30;
  options.vocabulary_size = 300;  // small vocab -> natural term overlap
  options.planted_terms = {{"xq1", 25}, {"xq2", 13}};
  options.planted_phrases = {{"xpa", "xpb", 12, 9, 5}};
  const auto corpus = Unwrap(workload::GenerateCorpus(db.get(), options));
  ASSERT_GT(corpus.num_elements, 50u);
  index::InvertedIndex index = Unwrap(index::InvertedIndex::Build(db.get()));

  // Three-phrase predicate: two planted single terms + one planted
  // phrase (exercises PhraseFinder inside TermJoin).
  algebra::IrPredicate predicate;
  predicate.phrases.push_back(algebra::WeightedPhrase{{"xq1"}, 0.8});
  predicate.phrases.push_back(algebra::WeightedPhrase{{"xq2"}, 0.6});
  predicate.phrases.push_back(algebra::WeightedPhrase{{"xpa", "xpb"}, 0.7});

  std::unique_ptr<algebra::Scorer> scorer;
  if (param.complex) {
    scorer = std::make_unique<algebra::ComplexProximityScorer>(
        predicate.Weights());
  } else {
    scorer = std::make_unique<algebra::WeightedCountScorer>(
        predicate.Weights());
  }

  TermJoin join(db.get(), &index, &predicate, scorer.get());
  const auto tj = Normalized(Unwrap(join.Run()));
  const auto reference = Unwrap(algebra::ReferenceScoreAllElements(
      db.get(), predicate, *scorer));
  ExpectSameResults(tj, reference, "termjoin-vs-reference");

  TermJoinOptions enhanced_options;
  enhanced_options.enhanced = true;
  TermJoin enhanced(db.get(), &index, &predicate, scorer.get(),
                    enhanced_options);
  ExpectSameElements(Normalized(Unwrap(enhanced.Run())), tj, "enhanced");

  GeneralizedMeet meet(db.get(), &index, &predicate, scorer.get());
  ExpectSameElements(Unwrap(meet.Run()), tj, "genmeet");

  Comp1 comp1(db.get(), &index, &predicate, scorer.get());
  ExpectSameElements(Unwrap(comp1.Run()), tj, "comp1");

  Comp2 comp2(db.get(), &index, &predicate, scorer.get());
  ExpectSameElements(Unwrap(comp2.Run()), tj, "comp2");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CorpusEquivalenceTest,
    ::testing::Values(CorpusCase{1, false}, CorpusCase{1, true},
                      CorpusCase{2, false}, CorpusCase{2, true},
                      CorpusCase{3, false}, CorpusCase{3, true},
                      CorpusCase{4, false}, CorpusCase{4, true},
                      CorpusCase{5, false}, CorpusCase{5, true}));

/// Phrase-query equivalence on random corpora.
class PhraseEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PhraseEquivalenceTest, PhraseFinderEqualsComp3) {
  TempDir dir;
  auto db = MakeTestDatabase(dir.path(), 512);
  workload::CorpusOptions options;
  options.seed = GetParam();
  options.num_articles = 4;
  options.vocabulary_size = 200;
  options.planted_phrases = {{"xph1", "xph2", 30, 22, 14}};
  Unwrap(workload::GenerateCorpus(db.get(), options));
  index::InvertedIndex index = Unwrap(index::InvertedIndex::Build(db.get()));

  const std::vector<std::string> phrase = {"xph1", "xph2"};
  PhraseFinderQuery finder(db.get(), &index, phrase);
  Comp3 composite(db.get(), &index, phrase);
  const auto finder_out = Unwrap(finder.Run());
  EXPECT_EQ(finder_out, Unwrap(composite.Run()));
  // Exactly the planted number of co-occurrences.
  uint64_t total = 0;
  for (const PhraseResult& result : finder_out) total += result.count;
  EXPECT_EQ(total, 14u);
  // Also try a frequent natural pair from the background vocabulary.
  PhraseFinderQuery natural(db.get(), &index, {"w00000", "w00001"});
  Comp3 natural_composite(db.get(), &index, {"w00000", "w00001"});
  EXPECT_EQ(Unwrap(natural.Run()), Unwrap(natural_composite.Run()));
  // Galloping advance must agree with the linear merge on highly
  // unbalanced natural lists too.
  std::vector<const index::PostingList*> lists = {index.Lookup("w00000"),
                                                  index.Lookup("w00123")};
  PhraseFinderStream linear(lists, false);
  PhraseFinderStream galloping(lists, true);
  const auto linear_out = linear.DrainAll();
  const auto galloping_out = galloping.DrainAll();
  ASSERT_EQ(linear_out.size(), galloping_out.size());
  for (size_t i = 0; i < linear_out.size(); ++i) {
    EXPECT_EQ(linear_out[i].word_pos, galloping_out[i].word_pos);
  }
  EXPECT_LE(galloping.postings_scanned(), linear.postings_scanned());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PhraseEquivalenceTest,
                         ::testing::Range<uint64_t>(10, 18));

}  // namespace
}  // namespace tix::exec
