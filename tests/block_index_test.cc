#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "algebra/scoring.h"
#include "algebra/threshold.h"
#include "common/block_codec.h"
#include "common/obs.h"
#include "common/varint.h"
#include "exec/parallel_term_join.h"
#include "exec/phrase_query.h"
#include "exec/term_join.h"
#include "index/block_cache.h"
#include "index/block_cursor.h"
#include "index/inverted_index.h"
#include "tests/test_util.h"
#include "workload/corpus.h"
#include "workload/paper_example.h"

/// \file
/// Block-compressed posting lists: the codec, the decoded-block cache,
/// the lazy cursor, and — the load-bearing contract — byte-identical
/// query results between the compressed and decoded representations, at
/// every partition count and top-K setting, over seeded random corpora.
/// Plus on-disk compatibility (format versions 1/2/3/4, including
/// v3<->v4 transcode round-trips) and fuzzed corruption of both block
/// formats. Kernel-level differential fuzzing lives in codec_test.cc.
/// Runs under TSan and ASan/UBSan via scripts/check_sanitizers.sh.

namespace tix::index {
namespace {

using testing::ExpectOk;
using testing::MakeTestDatabase;
using testing::TempDir;
using testing::Unwrap;

// Local copies of the on-disk magic numbers (deliberately file-local in
// inverted_index.cc): the legacy writers below must keep producing
// version 1/2 files even if the production constants ever move.
constexpr uint64_t kMagicV1 = 0x5449581049445801ULL;
constexpr uint64_t kMagicV2 = 0x5449581049445802ULL;
constexpr uint64_t kMagicV3 = 0x5449581049445803ULL;
constexpr uint64_t kMagicV4 = 0x5449581049445804ULL;

constexpr codec::TailFormat kBothFormats[] = {codec::TailFormat::kV3,
                                              codec::TailFormat::kV4};

/// Restores the process-wide cache to its default size when a test that
/// reconfigured it leaves scope.
struct CacheConfigGuard {
  ~CacheConfigGuard() {
    DecodedBlockCache::Instance().Configure(kDefaultBlockCacheBytes);
    DecodedBlockCache::Instance().Clear();
  }
};

/// A decoded list with `total` postings spread over `docs` documents:
/// positions strictly ascending within each doc, node ids non-decreasing
/// (a few postings per node), frequencies exact.
PostingList MakeSyntheticList(uint32_t total, uint32_t docs) {
  PostingList list;
  const uint32_t per_doc = (total + docs - 1) / docs;
  for (uint32_t i = 0; i < total; ++i) {
    const uint32_t doc = i / per_doc;
    const uint32_t local = i % per_doc;
    Posting posting;
    posting.doc_id = doc;
    posting.node_id = doc * 1000 + local / 5;
    posting.word_pos = local * 3 + 1;
    list.postings.push_back(posting);
  }
  uint32_t df = 0;
  uint32_t nf = 0;
  for (size_t i = 0; i < list.postings.size(); ++i) {
    const bool new_doc =
        i == 0 || list.postings[i].doc_id != list.postings[i - 1].doc_id;
    if (new_doc) ++df;
    if (new_doc || list.postings[i].node_id != list.postings[i - 1].node_id) {
      ++nf;
    }
  }
  list.doc_frequency = df;
  list.node_frequency = nf;
  return list;
}

// ---------------------------------------------------------- block codec

TEST(BlockCodecTest, RoundTripsBlocksOfEverySize) {
  for (const codec::TailFormat format : kBothFormats) {
    for (const size_t count : {size_t{1}, size_t{2}, size_t{7}, size_t{127},
                               size_t{128}}) {
      std::vector<uint32_t> triples;
      uint32_t doc = 5;
      for (size_t i = 0; i < count; ++i) {
        if (i % 3 == 0 && i > 0) doc += 2;  // several postings per doc
        triples.push_back(doc);
        triples.push_back(doc * 10 + static_cast<uint32_t>(i));
        triples.push_back(static_cast<uint32_t>(i) * 4 + 1);
      }
      std::string bytes;
      codec::EncodeBlockTail(format, triples.data(), count, &bytes);
      if (count == 1) {
        EXPECT_TRUE(bytes.empty());
      }
      std::vector<uint32_t> decoded(triples.size());
      decoded[0] = triples[0];
      decoded[1] = triples[1];
      decoded[2] = triples[2];
      ExpectOk(codec::DecodeBlockTail(format, bytes, count, decoded.data()));
      EXPECT_EQ(decoded, triples)
          << "count=" << count << " format=" << static_cast<int>(format);
    }
  }
}

TEST(BlockCodecTest, RejectsTruncatedAndOverlongTails) {
  for (const codec::TailFormat format : kBothFormats) {
    std::vector<uint32_t> triples;
    for (uint32_t i = 0; i < 16; ++i) {
      triples.push_back(i);          // one posting per doc
      triples.push_back(i * 7);      // absolute node each time
      triples.push_back(i * 31 + 1);
    }
    std::string bytes;
    codec::EncodeBlockTail(format, triples.data(), 16, &bytes);
    std::vector<uint32_t> out(triples.size());
    out[0] = triples[0];
    out[1] = triples[1];
    out[2] = triples[2];
    // Every strict prefix must fail (truncation mid-varint, mid-triple,
    // or — v4 — inside the control or data regions).
    for (size_t len = 0; len < bytes.size(); ++len) {
      EXPECT_FALSE(
          codec::DecodeBlockTail(format, std::string_view(bytes).substr(0, len),
                                 16, out.data())
              .ok())
          << "prefix " << len << " format=" << static_cast<int>(format);
    }
    // Trailing garbage must fail too: a block tail is exact.
    EXPECT_FALSE(
        codec::DecodeBlockTail(format, bytes + '\0', 16, out.data()).ok());
  }
  // A v3 varint claiming more than 32 bits must fail.
  std::vector<uint32_t> out(6);
  const std::string overflow("\xff\xff\xff\xff\xff", 5);
  EXPECT_FALSE(codec::DecodeBlockTail(codec::TailFormat::kV3, overflow, 2,
                                      out.data())
                   .ok());
}

// ------------------------------------------------- compress / DecodeAll

TEST(PostingListCompressTest, CompressPreservesEveryPosting) {
  for (const uint32_t total : {1u, 127u, 128u, 129u, 1000u}) {
    PostingList list = MakeSyntheticList(total, 9);
    ExpectOk(list.DebugCheckSorted());
    const std::vector<Posting> before = list.postings;
    list.Compress();
    EXPECT_TRUE(list.is_compressed());
    EXPECT_TRUE(list.postings.empty());
    EXPECT_EQ(list.size(), total);
    EXPECT_EQ(list.num_blocks(), (total + kSkipInterval - 1) / kSkipInterval);
    EXPECT_NE(list.cache_id, 0u);
    EXPECT_EQ(list.DecodeAll(), before);
    ExpectOk(list.DebugCheckSorted());
    // Blocks-resident bytes must undercut the 12-byte struct by a wide
    // margin on delta-friendly data (tiny lists pay the string's SSO
    // floor, so only judge real multi-block lists).
    if (total >= kSkipInterval) {
      EXPECT_LT(list.PostingBytes() * 3, size_t{12} * total);
    }
  }
}

TEST(PostingListCompressTest, SeekMetadataMatchesDecodedForm) {
  PostingList decoded = MakeSyntheticList(900, 30);
  decoded.BuildSkips();
  PostingList compressed = MakeSyntheticList(900, 30);
  compressed.Compress();
  for (uint32_t doc = 0; doc <= 31; ++doc) {
    EXPECT_EQ(compressed.LowerBoundDoc(doc), decoded.LowerBoundDoc(doc))
        << "doc " << doc;
    EXPECT_EQ(compressed.DocPostingCount(doc), decoded.DocPostingCount(doc))
        << "doc " << doc;
    EXPECT_EQ(compressed.FirstDocAtOrAfter(doc), decoded.FirstDocAtOrAfter(doc))
        << "doc " << doc;
    const auto bound_c = compressed.BlockBoundAt(doc);
    const auto bound_d = decoded.BlockBoundAt(doc);
    EXPECT_EQ(bound_c.max_doc_count, bound_d.max_doc_count) << "doc " << doc;
    EXPECT_EQ(bound_c.window_end, bound_d.window_end) << "doc " << doc;
  }
  for (const size_t from : {size_t{0}, size_t{100}, size_t{500}}) {
    EXPECT_EQ(compressed.SkipForward(from, 17, 10),
              decoded.SkipForward(from, 17, 10));
  }
}

TEST(PostingListCompressTest, DistinctListsGetDistinctCacheIds) {
  PostingList a = MakeSyntheticList(200, 4);
  PostingList b = MakeSyntheticList(200, 4);
  a.Compress();
  b.Compress();
  EXPECT_NE(a.cache_id, 0u);
  EXPECT_NE(a.cache_id, b.cache_id);
}

// -------------------------------------------------------- decoded cache

TEST(DecodedBlockCacheTest, HitsMissesAndEvictionsAreCounted) {
  CacheConfigGuard guard;
  DecodedBlockCache& cache = DecodedBlockCache::Instance();
  cache.Clear();
  cache.Configure(kDefaultBlockCacheBytes);

  PostingList list = MakeSyntheticList(1000, 10);  // 8 blocks
  list.Compress();
  const BlockCacheStats before = cache.Stats();
  {
    BlockCursor cursor(&list);
    for (size_t i = 0; i < cursor.size(); ++i) (void)cursor.Get(i);
  }
  const BlockCacheStats after_first = cache.Stats();
  EXPECT_EQ(after_first.misses - before.misses, list.num_blocks());
  EXPECT_EQ(after_first.inserts - before.inserts, list.num_blocks());
  {
    BlockCursor cursor(&list);
    for (size_t i = 0; i < cursor.size(); ++i) (void)cursor.Get(i);
  }
  const BlockCacheStats after_second = cache.Stats();
  EXPECT_EQ(after_second.hits - after_first.hits, list.num_blocks());
  EXPECT_EQ(after_second.misses, after_first.misses);
  EXPECT_GE(after_second.entries, uint64_t{list.num_blocks()});
}

TEST(DecodedBlockCacheTest, CapacityZeroDisablesResidency) {
  CacheConfigGuard guard;
  DecodedBlockCache& cache = DecodedBlockCache::Instance();
  cache.Configure(0);
  cache.Clear();

  PostingList list = MakeSyntheticList(600, 6);
  list.Compress();
  BlockCursor cursor(&list);
  std::vector<Posting> seen;
  for (size_t i = 0; i < cursor.size(); ++i) seen.push_back(cursor.Get(i));
  // Reads still work (Insert passes the block through) …
  EXPECT_EQ(seen, list.DecodeAll());
  // … but nothing stays resident and nothing ever hits.
  const BlockCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(DecodedBlockCacheTest, TinyCapacityEvictsButNeverCorruptsReads) {
  CacheConfigGuard guard;
  DecodedBlockCache& cache = DecodedBlockCache::Instance();
  cache.Clear();
  // One entry per shard at most: repeated full scans of a 24-block list
  // must evict constantly.
  cache.Configure(16 * (sizeof(DecodedBlock) + 96));

  PostingList list = MakeSyntheticList(3000, 25);  // 24 blocks
  list.Compress();
  const std::vector<Posting> expected = list.DecodeAll();
  const BlockCacheStats before = cache.Stats();
  for (int pass = 0; pass < 3; ++pass) {
    BlockCursor cursor(&list);
    for (size_t i = 0; i < cursor.size(); ++i) {
      ASSERT_EQ(cursor.Get(i), expected[i]) << "pass " << pass << " @" << i;
    }
  }
  const BlockCacheStats after = cache.Stats();
  EXPECT_GT(after.evictions, before.evictions);
  EXPECT_LE(after.bytes, cache.capacity_bytes());
}

// --------------------------------------------------------- block cursor

TEST(BlockCursorTest, DecodedListsReadWithoutTouchingTheCache) {
  CacheConfigGuard guard;
  DecodedBlockCache::Instance().Clear();
  PostingList list = MakeSyntheticList(300, 5);
  list.BuildSkips();
  const BlockCacheStats before = DecodedBlockCache::Instance().Stats();
  obs::MetricsContext metrics;
  {
    const obs::ScopedMetrics scope(&metrics);
    BlockCursor cursor(&list);
    ASSERT_EQ(cursor.size(), list.postings.size());
    for (size_t i = 0; i < cursor.size(); ++i) {
      EXPECT_EQ(cursor.Get(i), list.postings[i]);
    }
  }
  const BlockCacheStats after = DecodedBlockCache::Instance().Stats();
  EXPECT_EQ(metrics.value(obs::Counter::kIndexBlocksScanned), 0u);
  EXPECT_EQ(metrics.value(obs::Counter::kIndexBlocksDecoded), 0u);
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
}

TEST(BlockCursorTest, DecodedBlocksNeverExceedBlocksScanned) {
  CacheConfigGuard guard;
  DecodedBlockCache::Instance().Configure(kDefaultBlockCacheBytes);
  DecodedBlockCache::Instance().Clear();
  PostingList list = MakeSyntheticList(1200, 8);
  list.Compress();
  obs::MetricsContext metrics;
  {
    const obs::ScopedMetrics scope(&metrics);
    BlockCursor cursor(&list);
    // Random-ish access pattern: forward, backward, strided.
    for (size_t i = 0; i < cursor.size(); i += 17) (void)cursor.Get(i);
    for (size_t i = cursor.size(); i-- > 0;) {
      (void)cursor.Get(i);
      if (i < 50) break;
    }
  }
  const uint64_t scanned = metrics.value(obs::Counter::kIndexBlocksScanned);
  const uint64_t decoded = metrics.value(obs::Counter::kIndexBlocksDecoded);
  const uint64_t hits = metrics.value(obs::Counter::kIndexBlockCacheHits);
  EXPECT_GT(scanned, 0u);
  EXPECT_LE(decoded, scanned);
  EXPECT_EQ(decoded + hits, scanned);  // every load is a hit or a decode
}

// ---------------------------------------------------- corpus scaffolding

struct Corpus {
  TempDir dir;
  std::unique_ptr<storage::Database> db;
};

std::unique_ptr<Corpus> MakeCorpusDb(uint64_t articles, uint64_t seed) {
  auto corpus = std::make_unique<Corpus>();
  corpus->db = MakeTestDatabase(corpus->dir.path());
  workload::CorpusOptions options;
  options.num_articles = articles;
  options.seed = seed;
  options.vocabulary_size = 400;
  options.planted_terms = {{"xq1", 9 * articles}, {"xq2", 4 * articles}};
  options.planted_phrases = {
      {"xpa", "xpb", 5 * articles, 4 * articles, 2 * articles}};
  Unwrap(workload::GenerateCorpus(corpus->db.get(), options));
  return corpus;
}

algebra::IrPredicate ThreePhrasePredicate() {
  algebra::IrPredicate predicate;
  predicate.phrases.push_back(algebra::WeightedPhrase{{"xq1"}, 0.8});
  predicate.phrases.push_back(algebra::WeightedPhrase{{"xq2"}, 0.6});
  predicate.phrases.push_back(algebra::WeightedPhrase{{"xpa", "xpb"}, 0.7});
  return predicate;
}

void ExpectIdentical(const std::vector<exec::ScoredElement>& actual,
                     const std::vector<exec::ScoredElement>& expected,
                     const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].node, expected[i].node) << label << " @" << i;
    EXPECT_EQ(actual[i].doc, expected[i].doc) << label << " @" << i;
    EXPECT_EQ(actual[i].start, expected[i].start) << label << " @" << i;
    EXPECT_EQ(actual[i].end, expected[i].end) << label << " @" << i;
    EXPECT_EQ(actual[i].counts, expected[i].counts) << label << " @" << i;
    // Exact: both representations feed the very same merge code.
    EXPECT_EQ(actual[i].score, expected[i].score) << label << " @" << i;
  }
}

// ------------------------------------------- representation equivalence

// The tentpole contract: over seeded corpora, every query path produces
// byte-identical results from the compressed representation and the
// decoded one — full TermJoin, PhraseFinder, and top-K pushdown at
// 1/2/4/8 partitions.
TEST(CompressedEquivalenceTest, TwentySeededCorpora) {
  constexpr size_t kInfinity = 1000000000;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    auto corpus = MakeCorpusDb(/*articles=*/10, /*seed=*/2000 + seed * 13);
    index::InvertedIndex decoded =
        Unwrap(InvertedIndex::Build(corpus->db.get(), /*compress=*/false));
    index::InvertedIndex compressed =
        Unwrap(InvertedIndex::Build(corpus->db.get()));
    const std::string label_base = "seed=" + std::to_string(seed);

    const algebra::IrPredicate predicate = ThreePhrasePredicate();
    const algebra::WeightedCountScorer scorer(predicate.Weights());

    // Full merge.
    exec::TermJoin join_d(corpus->db.get(), &decoded, &predicate, &scorer);
    exec::TermJoin join_c(corpus->db.get(), &compressed, &predicate, &scorer);
    const std::vector<exec::ScoredElement> full = Unwrap(join_d.Run());
    ExpectIdentical(Unwrap(join_c.Run()), full, label_base + "/full");

    // PhraseFinder.
    exec::PhraseFinderQuery phrase_d(corpus->db.get(), &decoded,
                                     {"xpa", "xpb"});
    exec::PhraseFinderQuery phrase_c(corpus->db.get(), &compressed,
                                     {"xpa", "xpb"});
    EXPECT_EQ(Unwrap(phrase_c.Run()), Unwrap(phrase_d.Run())) << label_base;

    // Top-K pushdown across partition counts.
    for (const size_t top_k : {size_t{1}, size_t{3}, kInfinity}) {
      algebra::ThresholdSpec spec;
      spec.top_k = top_k;
      exec::TermJoinOptions serial_options;
      serial_options.threshold = spec;
      exec::TermJoin topk_d(corpus->db.get(), &decoded, &predicate, &scorer,
                            serial_options);
      const std::vector<exec::ScoredElement> expected = Unwrap(topk_d.Run());
      const std::string label =
          label_base + "/k=" + std::to_string(top_k);
      for (const size_t partitions : {1u, 2u, 4u, 8u}) {
        exec::ParallelTermJoinOptions options;
        options.join.threshold = spec;
        options.num_partitions = partitions;
        options.num_threads = 4;
        exec::ParallelTermJoin parallel(corpus->db.get(), &compressed,
                                        &predicate, &scorer, options);
        ExpectIdentical(Unwrap(parallel.Run()), expected,
                        label + "/p" + std::to_string(partitions));
      }
    }
  }
}

// v3 and v4 are the same index in different tail encodings: over seeded
// corpora, a v3 save/load and a v3->v4 transcode round-trip must answer
// every query path byte-identically to the freshly built index — full
// TermJoin, PhraseFinder, and top-K pushdown across partition counts.
TEST(CompressedEquivalenceTest, FormatsAnswerQueriesIdentically) {
  constexpr size_t kInfinity = 1000000000;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    auto corpus = MakeCorpusDb(/*articles=*/10, /*seed=*/4000 + seed * 17);
    index::InvertedIndex built = Unwrap(InvertedIndex::Build(corpus->db.get()));
    const std::string v3_path = corpus->dir.path() + "/fmt.v3.tix";
    const std::string v4_path = corpus->dir.path() + "/fmt.v4.tix";
    ExpectOk(built.SaveToFile(v3_path, 3));
    index::InvertedIndex v3 = Unwrap(InvertedIndex::LoadFromFile(v3_path));
    ExpectOk(v3.SaveToFile(v4_path, 4));  // transcode: decode v3, encode v4
    index::InvertedIndex v4 = Unwrap(InvertedIndex::LoadFromFile(v4_path));
    ASSERT_EQ(v3.tail_format(), codec::TailFormat::kV3);
    ASSERT_EQ(v4.tail_format(), codec::TailFormat::kV4);
    const std::string label_base = "seed=" + std::to_string(seed);

    const algebra::IrPredicate predicate = ThreePhrasePredicate();
    const algebra::WeightedCountScorer scorer(predicate.Weights());

    exec::TermJoin join_b(corpus->db.get(), &built, &predicate, &scorer);
    const std::vector<exec::ScoredElement> full = Unwrap(join_b.Run());
    for (index::InvertedIndex* index : {&v3, &v4}) {
      const std::string label =
          label_base + (index == &v3 ? "/v3" : "/v4");
      exec::TermJoin join(corpus->db.get(), index, &predicate, &scorer);
      ExpectIdentical(Unwrap(join.Run()), full, label + "/full");

      exec::PhraseFinderQuery phrase_b(corpus->db.get(), &built,
                                       {"xpa", "xpb"});
      exec::PhraseFinderQuery phrase(corpus->db.get(), index, {"xpa", "xpb"});
      EXPECT_EQ(Unwrap(phrase.Run()), Unwrap(phrase_b.Run())) << label;

      for (const size_t top_k : {size_t{1}, size_t{3}, kInfinity}) {
        algebra::ThresholdSpec spec;
        spec.top_k = top_k;
        exec::TermJoinOptions serial_options;
        serial_options.threshold = spec;
        exec::TermJoin topk_b(corpus->db.get(), &built, &predicate, &scorer,
                              serial_options);
        const std::vector<exec::ScoredElement> expected =
            Unwrap(topk_b.Run());
        for (const size_t partitions : {1u, 2u, 4u}) {
          exec::ParallelTermJoinOptions options;
          options.join.threshold = spec;
          options.num_partitions = partitions;
          options.num_threads = 4;
          exec::ParallelTermJoin parallel(corpus->db.get(), index, &predicate,
                                          &scorer, options);
          ExpectIdentical(Unwrap(parallel.Run()), expected,
                          label + "/k=" + std::to_string(top_k) + "/p" +
                              std::to_string(partitions));
        }
      }
    }
  }
}

// With pushdown skipping documents, decode work must drop: the streams
// seek on metadata and only landing blocks decode. Cache disabled so
// hits cannot mask the comparison.
TEST(CompressedEquivalenceTest, PushdownDecodesNoMoreBlocksThanFullScan) {
  CacheConfigGuard guard;
  DecodedBlockCache::Instance().Configure(0);
  DecodedBlockCache::Instance().Clear();

  auto corpus = MakeCorpusDb(/*articles=*/60, /*seed=*/77);
  index::InvertedIndex compressed =
      Unwrap(InvertedIndex::Build(corpus->db.get()));
  const algebra::IrPredicate predicate = ThreePhrasePredicate();
  const algebra::WeightedCountScorer scorer(predicate.Weights());

  auto run = [&](bool pushdown) {
    obs::MetricsContext metrics;
    const obs::ScopedMetrics scope(&metrics);
    exec::TermJoinOptions options;
    if (pushdown) {
      algebra::ThresholdSpec spec;
      spec.top_k = 1;
      options.threshold = spec;
    }
    exec::TermJoin join(corpus->db.get(), &compressed, &predicate, &scorer,
                        options);
    (void)Unwrap(join.Run());
    const uint64_t scanned = metrics.value(obs::Counter::kIndexBlocksScanned);
    const uint64_t decoded = metrics.value(obs::Counter::kIndexBlocksDecoded);
    EXPECT_LE(decoded, scanned);
    EXPECT_EQ(join.stats().blocks_decoded, decoded);
    return decoded;
  };

  const uint64_t full = run(/*pushdown=*/false);
  const uint64_t pruned = run(/*pushdown=*/true);
  EXPECT_GT(full, 0u);
  EXPECT_LE(pruned, full);
}

TEST(CompressedEquivalenceTest, StatsReportCacheHitsAfterWarmup) {
  CacheConfigGuard guard;
  DecodedBlockCache::Instance().Configure(kDefaultBlockCacheBytes);
  DecodedBlockCache::Instance().Clear();

  auto corpus = MakeCorpusDb(/*articles=*/20, /*seed=*/5);
  index::InvertedIndex compressed =
      Unwrap(InvertedIndex::Build(corpus->db.get()));
  const algebra::IrPredicate predicate = ThreePhrasePredicate();
  const algebra::WeightedCountScorer scorer(predicate.Weights());
  auto run = [&] {
    exec::TermJoin join(corpus->db.get(), &compressed, &predicate, &scorer);
    (void)Unwrap(join.Run());
    return join.stats();
  };
  const exec::TermJoinStats cold = run();
  const exec::TermJoinStats warm = run();
  EXPECT_GT(cold.blocks_decoded, 0u);
  // The second run reads the same blocks out of the cache.
  EXPECT_GT(warm.block_cache_hits, 0u);
  EXPECT_LT(warm.blocks_decoded, cold.blocks_decoded);
}

// ------------------------------------------------------ memory residency

TEST(IndexResidencyTest, CompressionShrinksPostingBytesAtLeastThreefold) {
  auto corpus = MakeCorpusDb(/*articles=*/40, /*seed=*/11);
  index::InvertedIndex decoded =
      Unwrap(InvertedIndex::Build(corpus->db.get(), /*compress=*/false));
  index::InvertedIndex compressed =
      Unwrap(InvertedIndex::Build(corpus->db.get()));
  const IndexResidency rd = decoded.MemoryUsage();
  const IndexResidency rc = compressed.MemoryUsage();
  ASSERT_EQ(rd.num_postings, rc.num_postings);
  EXPECT_EQ(rc.decoded_lists, 0u);
  EXPECT_GT(rc.compressed_lists, 0u);
  EXPECT_GE(rd.posting_bytes_per_posting() / rc.posting_bytes_per_posting(),
            3.0)
      << "decoded " << rd.posting_bytes_per_posting() << " B/posting vs "
      << "compressed " << rc.posting_bytes_per_posting();
}

// ----------------------------------------------------- on-disk formats

/// Serializes `index` (which must be in decoded form) in on-disk format
/// version 1 or 2, byte-compatible with what old SaveToFile wrote.
std::string EncodeLegacyIndex(const InvertedIndex& index,
                              const text::TokenizerOptions& tokenizer,
                              int version) {
  std::string blob;
  PutVarint64(&blob, version == 1 ? kMagicV1 : kMagicV2);
  if (version == 2) PutVarint64(&blob, kSkipInterval);
  blob.push_back(tokenizer.lowercase ? 1 : 0);
  blob.push_back(tokenizer.remove_stopwords ? 1 : 0);
  blob.push_back(tokenizer.stem ? 1 : 0);
  PutVarint64(&blob, tokenizer.min_token_length);
  const std::string dict = index.dictionary().Serialize();
  PutVarint64(&blob, dict.size());
  blob += dict;
  PutVarint64(&blob, index.stats().num_terms);
  for (text::TermId id = 0; id < index.stats().num_terms; ++id) {
    const PostingList* list = index.LookupId(id);
    const std::vector<Posting> postings = list->DecodeAll();
    PutVarint64(&blob, postings.size());
    PutVarint64(&blob, list->doc_frequency);
    PutVarint64(&blob, list->node_frequency);
    uint32_t prev_doc = 0, prev_node = 0, prev_pos = 0;
    for (const Posting& posting : postings) {
      const uint32_t doc_delta = posting.doc_id - prev_doc;
      PutVarint32(&blob, doc_delta);
      if (doc_delta != 0) {
        prev_node = 0;
        prev_pos = 0;
      }
      PutVarint32(&blob, posting.node_id - prev_node);
      PutVarint32(&blob, posting.word_pos - prev_pos);
      prev_doc = posting.doc_id;
      prev_node = posting.node_id;
      prev_pos = posting.word_pos;
    }
  }
  PutVarint64(&blob, index.stats().num_documents);
  PutVarint64(&blob, index.stats().num_text_nodes);
  return blob;
}

void WriteFile(const std::string& path, const std::string& blob) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  ASSERT_TRUE(out.good());
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class IndexFormatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTestDatabase(dir_.path());
    ExpectOk(workload::LoadPaperExample(db_.get()));
    index_ = std::make_unique<InvertedIndex>(Unwrap(InvertedIndex::Build(
        db_.get())));
  }

  void ExpectSameIndex(const InvertedIndex& loaded,
                       const std::string& label) const {
    ASSERT_EQ(loaded.stats().num_terms, index_->stats().num_terms) << label;
    ASSERT_EQ(loaded.stats().num_postings, index_->stats().num_postings)
        << label;
    EXPECT_EQ(loaded.stats().num_documents, index_->stats().num_documents)
        << label;
    for (text::TermId id = 0; id < loaded.stats().num_terms; ++id) {
      const PostingList* got = loaded.LookupId(id);
      const PostingList* want = index_->LookupId(id);
      ASSERT_EQ(got->DecodeAll(), want->DecodeAll()) << label << " term " << id;
      EXPECT_EQ(got->doc_frequency, want->doc_frequency) << label;
      EXPECT_EQ(got->node_frequency, want->node_frequency) << label;
    }
  }

  TempDir dir_;
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<InvertedIndex> index_;
};

TEST_F(IndexFormatTest, BlockFormatsRoundTripStayingCompressed) {
  // Default save: a fresh build is v4, and the file leads with the v4
  // magic so old binaries reject it instead of misdecoding the tails.
  {
    const std::string path = dir_.path() + "/default.tix";
    ExpectOk(index_->SaveToFile(path));
    std::string head = ReadFile(path);
    std::string_view view = head;
    EXPECT_EQ(Unwrap(GetVarint64(&view)), kMagicV4);
  }
  for (const int version : {3, 4}) {
    const std::string path =
        dir_.path() + "/v" + std::to_string(version) + ".tix";
    ExpectOk(index_->SaveToFile(path, version));
    {
      std::string head = ReadFile(path);
      std::string_view view = head;
      EXPECT_EQ(Unwrap(GetVarint64(&view)),
                version == 3 ? kMagicV3 : kMagicV4);
    }
    InvertedIndex loaded = Unwrap(InvertedIndex::LoadFromFile(path));
    EXPECT_EQ(loaded.format_version(), version);
    EXPECT_EQ(loaded.tail_format(), version == 3 ? codec::TailFormat::kV3
                                                 : codec::TailFormat::kV4);
    // Loaded lists stay block-compressed — no materialized vectors.
    uint64_t compressed_lists = 0;
    for (text::TermId id = 0; id < loaded.stats().num_terms; ++id) {
      const PostingList* list = loaded.LookupId(id);
      EXPECT_TRUE(list->postings.empty());
      if (list->is_compressed()) ++compressed_lists;
    }
    EXPECT_GT(compressed_lists, 0u);
    ExpectSameIndex(loaded, "v" + std::to_string(version));
  }
}

TEST_F(IndexFormatTest, TranscodeRoundTripsAreByteStable) {
  // v4 (resident) -> v3 file -> load -> v4 file -> load: postings and
  // frequencies survive both transcodes, and saving the final load in
  // its resident format reproduces the intermediate v4 file byte for
  // byte (copy-verbatim wire == resident).
  const std::string v3_path = dir_.path() + "/t.v3.tix";
  const std::string v4_path = dir_.path() + "/t.v4.tix";
  const std::string v4_again = dir_.path() + "/t.v4b.tix";
  ExpectOk(index_->SaveToFile(v3_path, 3));
  InvertedIndex from_v3 = Unwrap(InvertedIndex::LoadFromFile(v3_path));
  ExpectSameIndex(from_v3, "v4->v3->load");
  ExpectOk(from_v3.SaveToFile(v4_path, 4));
  InvertedIndex from_v4 = Unwrap(InvertedIndex::LoadFromFile(v4_path));
  EXPECT_EQ(from_v4.format_version(), 4);
  ExpectSameIndex(from_v4, "v4->v3->v4->load");
  ExpectOk(from_v4.SaveToFile(v4_again));  // resident format: verbatim copy
  EXPECT_EQ(ReadFile(v4_again), ReadFile(v4_path));
}

TEST_F(IndexFormatTest, LegacyVersionsLoadAndQueryIdentically) {
  for (const int version : {1, 2}) {
    const std::string path =
        dir_.path() + "/v" + std::to_string(version) + ".tix";
    WriteFile(path,
              EncodeLegacyIndex(*index_, db_->tokenizer().options(), version));
    InvertedIndex loaded = Unwrap(InvertedIndex::LoadFromFile(path));
    EXPECT_EQ(loaded.format_version(), version);
    ExpectSameIndex(loaded, "v" + std::to_string(version));

    // And the same answers through a real merge.
    algebra::IrPredicate predicate;
    predicate.phrases.push_back(algebra::WeightedPhrase{{"search"}, 1.0});
    predicate.phrases.push_back(
        algebra::WeightedPhrase{{"search", "engine"}, 1.0});
    const algebra::WeightedCountScorer scorer(predicate.Weights());
    exec::TermJoin join_orig(db_.get(), index_.get(), &predicate, &scorer);
    exec::TermJoin join_loaded(db_.get(), &loaded, &predicate, &scorer);
    ExpectIdentical(Unwrap(join_loaded.Run()), Unwrap(join_orig.Run()),
                    "termjoin v" + std::to_string(version));
  }
}

TEST_F(IndexFormatTest, DecodePostingsLoadMatchesCompressedLoad) {
  const std::string path = dir_.path() + "/index.tix";
  ExpectOk(index_->SaveToFile(path));
  IndexLoadOptions decode;
  decode.decode_postings = true;
  InvertedIndex expanded = Unwrap(InvertedIndex::LoadFromFile(path, decode));
  for (text::TermId id = 0; id < expanded.stats().num_terms; ++id) {
    const PostingList* list = expanded.LookupId(id);
    EXPECT_FALSE(list->is_compressed());
    EXPECT_EQ(list->postings.empty(), list->size() == 0);
  }
  ExpectSameIndex(expanded, "decode_postings");
}

// --------------------------------------------------------- format fuzz

TEST_F(IndexFormatTest, TruncatedFilesFailCleanly) {
  for (const int version : {3, 4}) {
    const std::string path =
        dir_.path() + "/v" + std::to_string(version) + ".tix";
    ExpectOk(index_->SaveToFile(path, version));
    const std::string blob = ReadFile(path);
    ASSERT_GT(blob.size(), 100u);
    const std::string mangled = dir_.path() + "/mangled.tix";
    // Every prefix: truncation may land mid-varint, mid-block,
    // mid-header — or, in v4, inside a control or data region.
    for (size_t len = 0; len < blob.size(); ++len) {
      WriteFile(mangled, blob.substr(0, len));
      const auto result = InvertedIndex::LoadFromFile(mangled);
      EXPECT_FALSE(result.ok()) << "v" << version << " prefix of " << len
                                << " bytes loaded";
    }
  }
}

TEST_F(IndexFormatTest, BitFlipsNeverCrashTheLoader) {
  for (const int version : {3, 4}) {
    const std::string path =
        dir_.path() + "/v" + std::to_string(version) + ".tix";
    ExpectOk(index_->SaveToFile(path, version));
    const std::string blob = ReadFile(path);
    const std::string mangled = dir_.path() + "/mangled.tix";
    size_t rejected = 0, accepted = 0;
    for (size_t pos = 0; pos < blob.size(); pos += 3) {
      std::string copy = blob;
      copy[pos] = static_cast<char>(copy[pos] ^ (1u << (pos % 8)));
      WriteFile(mangled, copy);
      const auto result = InvertedIndex::LoadFromFile(mangled);
      if (!result.ok()) {
        ++rejected;
        continue;
      }
      ++accepted;
      // A flip that survives validation (e.g. inside the dictionary's
      // term bytes or a tokenizer flag) must still yield a queryable
      // index: every list was re-validated at load, so decoding cannot
      // trip a check.
      for (text::TermId id = 0; id < result.value().stats().num_terms; ++id) {
        (void)result.value().LookupId(id)->DecodeAll();
      }
    }
    // Both outcomes must occur: plenty of flips (counts, deltas that
    // break ordering, the magic) get rejected, while flips in dictionary
    // term bytes or order-preserving delta changes survive — and the
    // survivors above proved queryable. Either way, no flip may crash.
    EXPECT_GT(rejected, 0u) << "v" << version;
    EXPECT_GT(accepted, 0u) << "v" << version;
  }
}

// ------------------------------------------------ move-assign regression

TEST(InvertedIndexMoveTest, MovedFromIndexIsValidEmpty) {
  TempDir dir;
  auto db = MakeTestDatabase(dir.path());
  ExpectOk(workload::LoadPaperExample(db.get()));
  InvertedIndex source = Unwrap(InvertedIndex::Build(db.get()));
  (void)source.Lookup("search");  // bump the lookup counter
  ASSERT_GT(source.stats().num_terms, 0u);

  InvertedIndex target;
  target = std::move(source);
  EXPECT_GT(target.stats().num_terms, 0u);
  EXPECT_NE(target.Lookup("search"), nullptr);

  // The moved-from index must be indistinguishable from a freshly
  // constructed one — not "valid but unspecified".
  EXPECT_EQ(source.stats().num_terms, 0u);
  EXPECT_EQ(source.stats().num_postings, 0u);
  EXPECT_EQ(source.stats().num_documents, 0u);
  EXPECT_EQ(source.lookups(), 0u);
  EXPECT_EQ(source.dictionary().size(), 0u);
  EXPECT_EQ(source.Lookup("search"), nullptr);
  EXPECT_EQ(source.format_version(), InvertedIndex::kCurrentFormatVersion);
  EXPECT_EQ(source.TermFrequency("search"), 0u);

  // And fully reusable: move a fresh build back in and query it.
  source = Unwrap(InvertedIndex::Build(db.get()));
  EXPECT_NE(source.Lookup("search"), nullptr);

  // Self-move must be a no-op, not a wipe.
  InvertedIndex& alias = target;
  target = std::move(alias);
  EXPECT_GT(target.stats().num_terms, 0u);
  EXPECT_NE(target.Lookup("search"), nullptr);
}

}  // namespace
}  // namespace tix::index
