#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "common/varint.h"

namespace tix {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
  EXPECT_TRUE(status.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = Status::NotFound("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_EQ(status.message(), "missing thing");
  EXPECT_EQ(status.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, CopyPreservesState) {
  const Status original = Status::IOError("disk gone");
  const Status copy = original;  // NOLINT(performance-unnecessary-copy...)
  EXPECT_TRUE(copy.IsIOError());
  EXPECT_EQ(copy.message(), "disk gone");
  Status assigned;
  assigned = original;
  EXPECT_TRUE(assigned.IsIOError());
}

TEST(StatusTest, WithContextPrefixesMessage) {
  const Status status = Status::Corruption("bad page").WithContext("nodes");
  EXPECT_EQ(status.ToString(), "Corruption: nodes: bad page");
  EXPECT_TRUE(Status::OK().WithContext("x").ok());
}

TEST(StatusTest, EveryCodeHasAName) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::OutOfRange("too big");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsOutOfRange());
  EXPECT_EQ(result.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> value = std::move(result).value();
  EXPECT_EQ(*value, 7);
}

namespace {
Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}
Result<int> Doubled(int x) {
  TIX_ASSIGN_OR_RETURN(const int value, ParsePositive(x));
  return value * 2;
}
}  // namespace

TEST(ResultTest, AssignOrReturnMacro) {
  const Result<int> ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  const Result<int> err = Doubled(-1);
  EXPECT_TRUE(err.status().IsInvalidArgument());
}

// --------------------------------------------------------------- Logging

TEST(LoggingTest, LevelGating) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Messages below the level are discarded (observable only as "does
  // not crash / no stream work"); exercise the macro path.
  TIX_LOG(Info) << "should be suppressed";
  TIX_LOG(Error) << "error-level message during tests is expected";
  SetLogLevel(saved);
}

TEST(LoggingTest, CheckMacrosPassOnTrue) {
  TIX_CHECK(true) << "never printed";
  TIX_CHECK_EQ(1, 1);
  TIX_CHECK_LT(1, 2);
  TIX_CHECK_GE(2, 2);
  TIX_DCHECK(true);
}

// ----------------------------------------------------------------- Timer

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<uint64_t>(i);
  EXPECT_GT(sink, 0u);  // keep the loop observable
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMicros(), 0);
  const double before = timer.ElapsedSeconds();
  timer.Restart();
  EXPECT_LE(timer.ElapsedSeconds(), before + 1.0);
}

// ---------------------------------------------------------------- Varint

TEST(VarintTest, RoundTripsRepresentativeValues) {
  const uint64_t values[] = {0,    1,    127,  128,   300,
                             1u << 20, 1ull << 35, UINT64_MAX};
  for (uint64_t value : values) {
    std::string buffer;
    PutVarint64(&buffer, value);
    EXPECT_EQ(static_cast<int>(buffer.size()), VarintLength(value));
    std::string_view view(buffer);
    const Result<uint64_t> decoded = GetVarint64(&view);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), value);
    EXPECT_TRUE(view.empty());
  }
}

TEST(VarintTest, SignedZigZagRoundTrip) {
  const int64_t values[] = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX};
  for (int64_t value : values) {
    std::string buffer;
    PutVarintSigned64(&buffer, value);
    std::string_view view(buffer);
    const Result<int64_t> decoded = GetVarintSigned64(&view);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), value);
  }
}

TEST(VarintTest, TruncatedInputIsCorruption) {
  std::string buffer;
  PutVarint64(&buffer, 1ull << 40);
  buffer.resize(buffer.size() - 1);
  std::string_view view(buffer);
  EXPECT_TRUE(GetVarint64(&view).status().IsCorruption());
}

TEST(VarintTest, SequenceDecoding) {
  std::string buffer;
  for (uint64_t i = 0; i < 100; ++i) PutVarint64(&buffer, i * i);
  std::string_view view(buffer);
  for (uint64_t i = 0; i < 100; ++i) {
    const Result<uint64_t> decoded = GetVarint64(&view);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), i * i);
  }
  EXPECT_TRUE(view.empty());
}

TEST(VarintTest, Varint32RejectsOverflow) {
  std::string buffer;
  PutVarint64(&buffer, 1ull << 40);
  std::string_view view(buffer);
  EXPECT_TRUE(GetVarint32(&view).status().IsCorruption());
}

TEST(VarintTest, TenthByteOverflowIsCorruption) {
  // UINT64_MAX encodes as nine 0xFF bytes plus a final 0x01: the tenth
  // byte contributes exactly one bit (shift 63). Any tenth byte above 1
  // would silently drop high bits if accepted — it must be rejected.
  const std::string max_encoding(9, '\xFF');
  {
    std::string buffer = max_encoding + '\x01';
    std::string_view view(buffer);
    const Result<uint64_t> decoded = GetVarint64(&view);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value(), UINT64_MAX);
    EXPECT_TRUE(view.empty());
  }
  for (const char tenth : {'\x02', '\x7F', '\x81'}) {
    std::string buffer = max_encoding + tenth;
    std::string_view view(buffer);
    EXPECT_TRUE(GetVarint64(&view).status().IsCorruption())
        << "tenth byte " << static_cast<int>(tenth) << " accepted";
  }
}

TEST(VarintTest, UnterminatedInputIsCorruption) {
  // Continuation bits forever: must terminate with an error, not read
  // past the buffer or loop.
  const std::string endless(16, '\x80');
  std::string_view view(endless);
  EXPECT_TRUE(GetVarint64(&view).status().IsCorruption());
}

// ----------------------------------------------------------------- CRC32

TEST(Crc32Test, KnownVectors) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(512, '\x5A');
  const uint32_t clean = Crc32(data.data(), data.size());
  for (const size_t bit : {0u, 7u, 2048u, 4095u}) {
    std::string mutated = data;
    mutated[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    EXPECT_NE(Crc32(mutated.data(), mutated.size()), clean) << bit;
  }
}

TEST(Crc32Test, SeedChainsIncrementally) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32(data.data(), data.size());
  const uint32_t first = Crc32(data.data(), 10);
  const uint32_t chained = Crc32(data.data() + 10, data.size() - 10, first);
  EXPECT_EQ(chained, whole);
}

// ---------------------------------------------------------------- Random

TEST(RandomTest, DeterministicForSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RandomTest, BoundedValuesInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(ZipfTest, RankZeroIsMostFrequent) {
  ZipfGenerator zipf(1000, 1.0, 99);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Next()];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[100]);
  // Empirical frequency of rank 0 should be near the analytic mass.
  const double expected = zipf.ProbabilityOfRank(0);
  const double observed = counts[0] / 20000.0;
  EXPECT_NEAR(observed, expected, 0.05);
}

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfGenerator zipf(100, 0.8, 1);
  double sum = 0.0;
  for (uint64_t k = 0; k < 100; ++k) sum += zipf.ProbabilityOfRank(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

// ------------------------------------------------------------ StringUtil

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  const std::vector<std::string> pieces = Split("a,,b,", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "");
  EXPECT_EQ(pieces[2], "b");
  EXPECT_EQ(pieces[3], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  const std::vector<std::string> pieces = SplitWhitespace("  foo \t bar\n");
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], "foo");
  EXPECT_EQ(pieces[1], "bar");
}

TEST(StringUtilTest, JoinAndTrim) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, CasePrefixSuffix) {
  EXPECT_EQ(ToLower("MiXeD123"), "mixed123");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(StringUtilTest, Formatting) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(10000), "10,000");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace tix
