#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algebra/scoring.h"
#include "algebra/threshold.h"
#include "exec/parallel_term_join.h"
#include "exec/term_join.h"
#include "index/block_cache.h"
#include "index/inverted_index.h"
#include "storage/mapped_file.h"
#include "tests/test_util.h"
#include "workload/corpus.h"

/// \file
/// The mmap-backed open path (docs/INDEX.md "Mapping lifecycle"):
///  - a v3 open maps the file and performs zero posting-byte reads,
///    while the copy fallback reads the file exactly once (never the
///    old double-buffered 2x);
///  - trust-mode opens (verify_on_open = false) answer every seek and
///    every query byte-identically to scrubbed opens, serial and
///    parallel, with and without top-K pushdown;
///  - saving from a mapped index round-trips;
///  - truncated files fail closed even without the scrub;
///  - cache id 0 is a hard "never cached" sentinel.
/// Runs under TSan and ASan/UBSan via scripts/check_sanitizers.sh.

namespace tix::index {
namespace {

using testing::ExpectOk;
using testing::MakeTestDatabase;
using testing::TempDir;
using testing::Unwrap;

struct Corpus {
  TempDir dir;
  std::unique_ptr<storage::Database> db;
};

std::unique_ptr<Corpus> MakeCorpusDb(uint64_t articles, uint64_t seed) {
  auto corpus = std::make_unique<Corpus>();
  corpus->db = MakeTestDatabase(corpus->dir.path());
  workload::CorpusOptions options;
  options.num_articles = articles;
  options.seed = seed;
  options.vocabulary_size = 400;
  options.planted_terms = {{"xq1", 9 * articles}, {"xq2", 4 * articles}};
  options.planted_phrases = {
      {"xpa", "xpb", 5 * articles, 4 * articles, 2 * articles}};
  Unwrap(workload::GenerateCorpus(corpus->db.get(), options));
  return corpus;
}

algebra::IrPredicate ThreePhrasePredicate() {
  algebra::IrPredicate predicate;
  predicate.phrases.push_back(algebra::WeightedPhrase{{"xq1"}, 0.8});
  predicate.phrases.push_back(algebra::WeightedPhrase{{"xq2"}, 0.6});
  predicate.phrases.push_back(algebra::WeightedPhrase{{"xpa", "xpb"}, 0.7});
  return predicate;
}

void ExpectIdentical(const std::vector<exec::ScoredElement>& actual,
                     const std::vector<exec::ScoredElement>& expected,
                     const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].node, expected[i].node) << label << " @" << i;
    EXPECT_EQ(actual[i].doc, expected[i].doc) << label << " @" << i;
    EXPECT_EQ(actual[i].counts, expected[i].counts) << label << " @" << i;
    EXPECT_EQ(actual[i].score, expected[i].score) << label << " @" << i;
  }
}

/// Snapshot of the process-wide open-I/O counters, for delta assertions.
struct IoSnapshot {
  uint64_t bytes_read;
  uint64_t bytes_mapped;
  uint64_t files_mapped;
  static IoSnapshot Take() {
    storage::IoCounters& counters = storage::GlobalIoCounters();
    return IoSnapshot{counters.bytes_read.load(),
                      counters.bytes_mapped.load(),
                      counters.files_mapped.load()};
  }
};

// -------------------------------------------------------- open-cost I/O

// The open-cost regression the tentpole exists for: a v3 open must not
// read the posting bytes at all — the file is mapped (O(1) syscalls per
// file), not copied (O(bytes) reads).
TEST(MmapOpenTest, V3OpenMapsInsteadOfReading) {
  auto corpus = MakeCorpusDb(/*articles=*/12, /*seed=*/41);
  InvertedIndex built = Unwrap(InvertedIndex::Build(corpus->db.get()));
  const std::string path = corpus->dir.path() + "/v3.tix";
  ExpectOk(built.SaveToFile(path));
  const uint64_t file_size = std::filesystem::file_size(path);

  const IoSnapshot before = IoSnapshot::Take();
  InvertedIndex mapped = Unwrap(InvertedIndex::LoadFromFile(path));
  const IoSnapshot after = IoSnapshot::Take();

  EXPECT_EQ(after.bytes_read - before.bytes_read, 0u)
      << "v3 open must mmap, not read";
  EXPECT_EQ(after.files_mapped - before.files_mapped, 1u);
  EXPECT_EQ(after.bytes_mapped - before.bytes_mapped, file_size);
  ASSERT_NE(mapped.mapping(), nullptr);
  for (text::TermId id = 0; id < mapped.stats().num_terms; ++id) {
    const PostingList* list = mapped.LookupId(id);
    if (list->empty()) continue;
    EXPECT_TRUE(list->is_mapped()) << "term " << id;
    EXPECT_TRUE(list->blocks.empty()) << "term " << id;
  }
  const IndexResidency residency = mapped.MemoryUsage();
  EXPECT_GT(residency.mapped_lists, 0u);
  EXPECT_GT(residency.mapped_bytes, 0u);
  EXPECT_EQ(residency.postings_bytes, 0u)
      << "mapped lists must not be charged as resident heap";
}

// The double-buffer bugfix: the copy fallback performs one exactly
// sized read — peak transient memory is the file size, not 2x — and the
// loaded index matches the mapped one posting for posting.
TEST(MmapOpenTest, CopyFallbackReadsExactlyOnce) {
  auto corpus = MakeCorpusDb(/*articles=*/12, /*seed=*/41);
  InvertedIndex built = Unwrap(InvertedIndex::Build(corpus->db.get()));
  const std::string path = corpus->dir.path() + "/v3.tix";
  ExpectOk(built.SaveToFile(path));
  const uint64_t file_size = std::filesystem::file_size(path);

  IndexLoadOptions copy_load;
  copy_load.prefer_mmap = false;
  const IoSnapshot before = IoSnapshot::Take();
  InvertedIndex copied = Unwrap(InvertedIndex::LoadFromFile(path, copy_load));
  const IoSnapshot after = IoSnapshot::Take();

  EXPECT_EQ(after.bytes_read - before.bytes_read, file_size)
      << "copy open must read the file exactly once";
  EXPECT_EQ(after.files_mapped - before.files_mapped, 0u);
  EXPECT_EQ(copied.mapping(), nullptr);

  InvertedIndex mapped = Unwrap(InvertedIndex::LoadFromFile(path));
  ASSERT_EQ(copied.stats().num_terms, mapped.stats().num_terms);
  for (text::TermId id = 0; id < copied.stats().num_terms; ++id) {
    const PostingList* own = copied.LookupId(id);
    const PostingList* map = mapped.LookupId(id);
    EXPECT_FALSE(own->is_mapped());
    ASSERT_EQ(own->DecodeAll(), map->DecodeAll()) << "term " << id;
  }
}

// ------------------------------------------------- trust ≡ verify opens

// Every seek primitive and every query path must answer identically
// whether the open scrubbed (doc_offsets + exact block-max bounds) or
// trusted (lazy seeks + never-prune bounds). This is the contract that
// makes tixd's fast restart safe.
TEST(MmapOpenTest, TrustAndVerifyOpensAnswerIdentically) {
  for (uint64_t seed : {7u, 23u, 99u}) {
    auto corpus = MakeCorpusDb(/*articles=*/10, /*seed=*/seed);
    InvertedIndex built = Unwrap(InvertedIndex::Build(corpus->db.get()));
    const std::string path = corpus->dir.path() + "/v3.tix";
    ExpectOk(built.SaveToFile(path));

    InvertedIndex verified = Unwrap(InvertedIndex::LoadFromFile(path));
    IndexLoadOptions trust_load;
    trust_load.verify_on_open = false;
    InvertedIndex trusted = Unwrap(InvertedIndex::LoadFromFile(path, trust_load));
    const std::string label_base = "seed=" + std::to_string(seed);

    // The trust-mode shape: no doc_offsets, sentinel bounds.
    ASSERT_EQ(trusted.stats().num_terms, verified.stats().num_terms);
    const storage::DocId num_docs =
        static_cast<storage::DocId>(verified.stats().num_documents);
    for (text::TermId id = 0; id < trusted.stats().num_terms; ++id) {
      const PostingList* t = trusted.LookupId(id);
      const PostingList* v = verified.LookupId(id);
      EXPECT_TRUE(t->doc_offsets.empty());
      if (!t->empty()) {
        EXPECT_EQ(t->max_doc_count, UINT32_MAX);
        EXPECT_GT(t->cache_id, 0u);
      }
      ASSERT_EQ(t->DecodeAll(), v->DecodeAll())
          << label_base << " term " << id;
      for (storage::DocId doc = 0; doc <= num_docs + 1; ++doc) {
        EXPECT_EQ(t->LowerBoundDoc(doc), v->LowerBoundDoc(doc))
            << label_base << " term " << id << " doc " << doc;
        EXPECT_EQ(t->DocPostingCount(doc), v->DocPostingCount(doc))
            << label_base << " term " << id << " doc " << doc;
        EXPECT_EQ(t->FirstDocAtOrAfter(doc), v->FirstDocAtOrAfter(doc))
            << label_base << " term " << id << " doc " << doc;
        const PostingList::BlockBound tb = t->BlockBoundAt(doc);
        const PostingList::BlockBound vb = v->BlockBoundAt(doc);
        // Trust-mode bounds are never tighter than exact ones (they
        // may not prune, but must never prune wrongly); the window
        // geometry comes from the shared skip directory and matches.
        EXPECT_GE(tb.max_doc_count, vb.max_doc_count) << label_base;
        EXPECT_EQ(tb.window_end, vb.window_end) << label_base;
      }
    }

    // Query equivalence: serial, parallel, and top-K pushdown (which
    // exercises the ScoreBoundOracle against the sentinel bounds).
    const algebra::IrPredicate predicate = ThreePhrasePredicate();
    const algebra::WeightedCountScorer scorer(predicate.Weights());
    exec::TermJoin join_v(corpus->db.get(), &verified, &predicate, &scorer);
    exec::TermJoin join_t(corpus->db.get(), &trusted, &predicate, &scorer);
    const std::vector<exec::ScoredElement> full = Unwrap(join_v.Run());
    ExpectIdentical(Unwrap(join_t.Run()), full, label_base + "/full");

    for (const size_t top_k : {size_t{1}, size_t{4}, size_t{1000000}}) {
      algebra::ThresholdSpec spec;
      spec.top_k = top_k;
      exec::TermJoinOptions serial_options;
      serial_options.threshold = spec;
      exec::TermJoin topk_v(corpus->db.get(), &verified, &predicate, &scorer,
                            serial_options);
      const std::vector<exec::ScoredElement> expected = Unwrap(topk_v.Run());
      const std::string label = label_base + "/k=" + std::to_string(top_k);
      for (const size_t partitions : {1u, 3u, 8u}) {
        exec::ParallelTermJoinOptions options;
        options.join.threshold = spec;
        options.num_partitions = partitions;
        options.num_threads = 4;
        exec::ParallelTermJoin parallel(corpus->db.get(), &trusted,
                                        &predicate, &scorer, options);
        ExpectIdentical(Unwrap(parallel.Run()), expected,
                        label + "/p" + std::to_string(partitions));
      }
    }
  }
}

// SaveToFile from a mapped index copies tails through the
// byte_offset/byte_length directory (tails are NOT contiguous in a
// mapped region — head varints interleave). A save → reload round trip
// proves the directory addresses exactly the right slices.
TEST(MmapOpenTest, SaveRoundTripsFromMappedIndex) {
  auto corpus = MakeCorpusDb(/*articles=*/8, /*seed=*/3);
  InvertedIndex built = Unwrap(InvertedIndex::Build(corpus->db.get()));
  const std::string path = corpus->dir.path() + "/v3.tix";
  ExpectOk(built.SaveToFile(path));

  IndexLoadOptions trust_load;
  trust_load.verify_on_open = false;
  InvertedIndex mapped = Unwrap(InvertedIndex::LoadFromFile(path, trust_load));
  ASSERT_NE(mapped.mapping(), nullptr);
  const std::string resaved = corpus->dir.path() + "/resaved.tix";
  ExpectOk(mapped.SaveToFile(resaved));

  InvertedIndex reloaded = Unwrap(InvertedIndex::LoadFromFile(resaved));
  ASSERT_EQ(reloaded.stats().num_terms, built.stats().num_terms);
  ASSERT_EQ(reloaded.stats().num_postings, built.stats().num_postings);
  for (text::TermId id = 0; id < reloaded.stats().num_terms; ++id) {
    ASSERT_EQ(reloaded.LookupId(id)->DecodeAll(),
              built.LookupId(id)->DecodeAll())
        << "term " << id;
  }
}

// ------------------------------------------------------------ fail-closed

// Trust mode skips the scrub, not the structural parse: a file
// truncated anywhere must still fail with Corruption/IOError, never
// crash or serve a partial index.
TEST(MmapOpenTest, TruncatedFilesFailClosedInTrustMode) {
  auto corpus = MakeCorpusDb(/*articles=*/6, /*seed=*/13);
  InvertedIndex built = Unwrap(InvertedIndex::Build(corpus->db.get()));
  const std::string path = corpus->dir.path() + "/v3.tix";
  ExpectOk(built.SaveToFile(path));
  std::string blob;
  {
    std::ifstream in(path, std::ios::binary);
    blob.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  ASSERT_GT(blob.size(), 64u);

  IndexLoadOptions trust_load;
  trust_load.verify_on_open = false;
  for (const size_t keep :
       {blob.size() - 1, blob.size() - 7, blob.size() / 2, blob.size() / 3,
        size_t{40}, size_t{8}, size_t{0}}) {
    const std::string mangled = corpus->dir.path() + "/truncated.tix";
    {
      std::ofstream out(mangled, std::ios::binary | std::ios::trunc);
      out.write(blob.data(), static_cast<std::streamsize>(keep));
    }
    const auto result = InvertedIndex::LoadFromFile(mangled, trust_load);
    EXPECT_FALSE(result.ok()) << "kept " << keep << " of " << blob.size();
  }
}

// --------------------------------------------------- cache id-0 sentinel

TEST(BlockCacheSentinelTest, IdZeroIsNeverMintedStoredNorServed) {
  for (int i = 0; i < 16; ++i) EXPECT_NE(DecodedBlockCache::NextListId(), 0u);

  DecodedBlockCache& cache = DecodedBlockCache::Instance();
  auto block = std::make_shared<DecodedBlock>();
  block->postings[0] = Posting{1, 2, 3};
  // Insert passes an id-0 block through without storing it...
  const DecodedBlockHandle returned = cache.Insert(0, 0, block);
  EXPECT_EQ(returned, block);
  // ...so a later id-0 lookup (any list whose id was reset) can never
  // see another list's bytes.
  EXPECT_EQ(cache.Lookup(0, 0), nullptr);
}

// The decode_postings expansion resets lists to cache_id 0; such a list
// must never alias blocks another compressed list parked in the cache.
TEST(BlockCacheSentinelTest, DecodedListsCarryTheSentinelAfterLoad) {
  auto corpus = MakeCorpusDb(/*articles=*/6, /*seed=*/29);
  InvertedIndex built = Unwrap(InvertedIndex::Build(corpus->db.get()));
  const std::string path = corpus->dir.path() + "/v3.tix";
  ExpectOk(built.SaveToFile(path));

  IndexLoadOptions decode;
  decode.decode_postings = true;
  InvertedIndex expanded = Unwrap(InvertedIndex::LoadFromFile(path, decode));
  for (text::TermId id = 0; id < expanded.stats().num_terms; ++id) {
    EXPECT_EQ(expanded.LookupId(id)->cache_id, 0u) << "term " << id;
  }
}

}  // namespace
}  // namespace tix::index
