// PathStack holistic path join: unit tests on the paper example plus a
// property test asserting agreement with the reference pattern matcher
// on random corpora for ad/pc chains.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "algebra/pattern_tree.h"
#include "algebra/reference_eval.h"
#include "exec/path_stack.h"
#include "tests/test_util.h"
#include "workload/corpus.h"
#include "workload/paper_example.h"

namespace tix::exec {
namespace {

using testing::ExpectOk;
using testing::MakeTestDatabase;
using testing::TempDir;
using testing::Unwrap;

std::multiset<PathMatch> AsSet(std::vector<PathMatch> matches) {
  return std::multiset<PathMatch>(matches.begin(), matches.end());
}

/// Reference answer: evaluate the same chain with the naive matcher.
std::multiset<PathMatch> ReferenceChain(storage::Database* db,
                                        const std::vector<PathStep>& steps) {
  algebra::ScoredPatternTree pattern;
  algebra::PatternNode* current = nullptr;
  for (size_t i = 0; i < steps.size(); ++i) {
    algebra::PatternNode* node;
    if (current == nullptr) {
      node = pattern.CreateRoot(static_cast<int>(i + 1));
    } else {
      node = current->AddChild(static_cast<int>(i + 1),
                               steps[i].parent_child
                                   ? algebra::Axis::kChild
                                   : algebra::Axis::kDescendant);
    }
    if (!steps[i].tag.empty()) node->set_tag(steps[i].tag);
    current = node;
  }
  const auto embeddings = Unwrap(algebra::MatchPattern(db, pattern));
  std::multiset<PathMatch> out;
  for (const auto& embedding : embeddings) {
    PathMatch match;
    for (const auto& [label, node] : embedding) match.push_back(node);
    out.insert(std::move(match));
  }
  return out;
}

class PathStackPaperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTestDatabase(dir_.path());
    ExpectOk(workload::LoadPaperExample(db_.get()));
  }

  TempDir dir_;
  std::unique_ptr<storage::Database> db_;
};

TEST_F(PathStackPaperTest, SingleStep) {
  PathStackJoin join(db_.get(), {{"section", false}});
  const auto matches = Unwrap(join.Run());
  EXPECT_EQ(matches.size(), 3u);
  for (const auto& match : matches) EXPECT_EQ(match.size(), 1u);
}

TEST_F(PathStackPaperTest, AdChain) {
  // article // section // p : only the third chapter's sections have
  // paragraphs (1 + 1 + 3 = 5 pairs, one article).
  PathStackJoin join(db_.get(),
                     {{"article", false}, {"section", false}, {"p", false}});
  const auto matches = Unwrap(join.Run());
  EXPECT_EQ(matches.size(), 5u);
  EXPECT_EQ(AsSet(matches),
            ReferenceChain(db_.get(), {{"article", false},
                                       {"section", false},
                                       {"p", false}}));
  EXPECT_EQ(join.stats().solutions, 5u);
}

TEST_F(PathStackPaperTest, PcEdgeRestricts) {
  // chapter / p : only the two chapter-level paragraphs are direct
  // children; section paragraphs are not.
  PathStackJoin pc(db_.get(), {{"chapter", false}, {"p", true}});
  EXPECT_EQ(Unwrap(pc.Run()).size(), 2u);
  PathStackJoin ad(db_.get(), {{"chapter", false}, {"p", false}});
  EXPECT_EQ(Unwrap(ad.Run()).size(), 7u);  // all paragraphs in chapters
}

TEST_F(PathStackPaperTest, WildcardStep) {
  // article // * // section-title : any intermediate element.
  const std::vector<PathStep> steps = {
      {"article", false}, {"", false}, {"section-title", false}};
  PathStackJoin join(db_.get(), steps);
  EXPECT_EQ(AsSet(Unwrap(join.Run())), ReferenceChain(db_.get(), steps));
}

TEST_F(PathStackPaperTest, NoMatches) {
  PathStackJoin join(db_.get(), {{"review", false}, {"section", false}});
  EXPECT_TRUE(Unwrap(join.Run()).empty());
  PathStackJoin unknown(db_.get(), {{"nonexistent", false}});
  EXPECT_TRUE(Unwrap(unknown.Run()).empty());
}

TEST_F(PathStackPaperTest, EmptyPatternRejected) {
  PathStackJoin join(db_.get(), {});
  EXPECT_TRUE(join.Run().status().IsInvalidArgument());
}

TEST_F(PathStackPaperTest, MatchesAreOrderedByLeaf) {
  PathStackJoin join(db_.get(), {{"chapter", false}, {"p", false}});
  const auto matches = Unwrap(join.Run());
  for (size_t i = 1; i < matches.size(); ++i) {
    EXPECT_LE(matches[i - 1].back(), matches[i].back());
  }
}

// Property test: agreement with the reference matcher on random corpora
// for a variety of chain shapes.
struct ChainCase {
  uint64_t seed;
  std::vector<PathStep> steps;
};

class PathStackPropertyTest : public ::testing::TestWithParam<ChainCase> {};

TEST_P(PathStackPropertyTest, AgreesWithReferenceMatcher) {
  const ChainCase& param = GetParam();
  TempDir dir;
  auto db = MakeTestDatabase(dir.path(), 256);
  workload::CorpusOptions options;
  options.seed = param.seed;
  options.num_articles = 6;
  Unwrap(workload::GenerateCorpus(db.get(), options));

  PathStackJoin join(db.get(), param.steps);
  EXPECT_EQ(AsSet(Unwrap(join.Run())), ReferenceChain(db.get(), param.steps));
}

INSTANTIATE_TEST_SUITE_P(
    Chains, PathStackPropertyTest,
    ::testing::Values(
        ChainCase{1, {{"article", false}, {"sec", false}, {"p", false}}},
        ChainCase{2, {{"article", false}, {"sec", true}}},
        ChainCase{3, {{"bdy", false}, {"sec", false}, {"p", true}}},
        ChainCase{4, {{"article", false}, {"", false}, {"p", false}}},
        ChainCase{5, {{"article", false}, {"fm", true}, {"au", false},
                      {"snm", true}}},
        ChainCase{6, {{"", false}, {"st", false}}},
        ChainCase{7, {{"sec", false}, {"", true}}},
        ChainCase{8, {{"article", false}, {"bdy", true}, {"sec", true},
                      {"p", true}}}));

}  // namespace
}  // namespace tix::exec
