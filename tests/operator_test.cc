// Tests for the pipelined operator framework: streaming semantics,
// plan explanation, and agreement of hand-built plans with the
// materialized helpers.

#include <memory>

#include <gtest/gtest.h>

#include "algebra/scoring.h"
#include "exec/operator.h"
#include "exec/structural_join.h"
#include "exec/term_join.h"
#include "index/inverted_index.h"
#include "tests/test_util.h"
#include "workload/paper_example.h"

namespace tix::exec {
namespace {

using testing::ExpectOk;
using testing::MakeTestDatabase;
using testing::TempDir;
using testing::Unwrap;

ScoredElement Elem(storage::NodeId node, storage::DocId doc, uint32_t start,
                   uint32_t end, double score) {
  ScoredElement element;
  element.node = node;
  element.doc = doc;
  element.start = start;
  element.end = end;
  element.score = score;
  return element;
}

TEST(OperatorTest, VectorSourceStreams) {
  VectorSource source({Elem(1, 0, 0, 10, 1.0), Elem(2, 0, 2, 4, 2.0)});
  const auto out = Unwrap(Drain(source));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].node, 1u);
  EXPECT_EQ(out[1].node, 2u);
}

TEST(OperatorTest, FilterDropsNonMatching) {
  auto source = std::make_unique<VectorSource>(std::vector<ScoredElement>{
      Elem(1, 0, 0, 10, 0.5), Elem(2, 0, 2, 4, 2.0),
      Elem(3, 0, 5, 7, 1.5)});
  FilterOperator filter(std::move(source), "score>1",
                        [](const ScoredElement& e) { return e.score > 1.0; });
  const auto out = Unwrap(Drain(filter));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].node, 2u);
  EXPECT_EQ(out[1].node, 3u);
}

TEST(OperatorTest, SortOrders) {
  auto make_source = [] {
    return std::make_unique<VectorSource>(std::vector<ScoredElement>{
        Elem(2, 0, 5, 7, 2.0), Elem(1, 0, 0, 10, 0.5),
        Elem(3, 1, 1, 2, 1.5)});
  };
  SortOperator by_doc(make_source(), SortOperator::Order::kDocumentOrder);
  auto doc_order = Unwrap(Drain(by_doc));
  ASSERT_EQ(doc_order.size(), 3u);
  EXPECT_EQ(doc_order[0].node, 1u);
  EXPECT_EQ(doc_order[1].node, 2u);
  EXPECT_EQ(doc_order[2].node, 3u);

  SortOperator by_score(make_source(), SortOperator::Order::kScoreDescending);
  auto score_order = Unwrap(Drain(by_score));
  EXPECT_EQ(score_order[0].node, 2u);
  EXPECT_EQ(score_order[1].node, 3u);
  EXPECT_EQ(score_order[2].node, 1u);
}

TEST(OperatorTest, ThresholdPlanOperator) {
  auto source = std::make_unique<VectorSource>(std::vector<ScoredElement>{
      Elem(1, 0, 0, 10, 0.5), Elem(2, 0, 2, 4, 2.0), Elem(3, 0, 5, 7, 1.5),
      Elem(4, 0, 8, 9, 3.0)});
  algebra::ThresholdSpec spec;
  spec.min_score = 1.0;
  spec.top_k = 2;
  ThresholdPlanOperator threshold(std::move(source), spec);
  const auto out = Unwrap(Drain(threshold));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].node, 4u);
  EXPECT_EQ(out[1].node, 2u);
}

TEST(OperatorTest, ScopeSemiJoinStreaming) {
  // Anchors: [0,100) in doc 0 and [0,50) in doc 1.
  auto anchors = std::make_unique<VectorSource>(std::vector<ScoredElement>{
      Elem(10, 0, 0, 100, 0), Elem(20, 1, 0, 50, 0)});
  // Probe: inside doc0 anchor, outside (doc 0, beyond end is impossible
  // in real data; use doc 2), equal to doc1 anchor, inside doc1.
  auto probe = std::make_unique<VectorSource>(std::vector<ScoredElement>{
      Elem(11, 0, 5, 9, 1.0), Elem(20, 1, 0, 50, 2.0),
      Elem(21, 1, 3, 6, 3.0), Elem(30, 2, 1, 2, 4.0)});
  ScopeSemiJoinOperator or_self(std::move(probe), std::move(anchors),
                                /*or_self=*/true);
  const auto out = Unwrap(Drain(or_self));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].node, 11u);
  EXPECT_EQ(out[1].node, 20u);  // self match allowed
  EXPECT_EQ(out[2].node, 21u);
}

TEST(OperatorTest, ScopeSemiJoinStrict) {
  auto anchors = std::make_unique<VectorSource>(std::vector<ScoredElement>{
      Elem(10, 0, 0, 100, 0), Elem(12, 0, 4, 20, 0)});
  auto probe = std::make_unique<VectorSource>(std::vector<ScoredElement>{
      Elem(10, 0, 0, 100, 1.0),   // equals outer anchor -> rejected
      Elem(12, 0, 4, 20, 2.0),    // equals inner anchor but inside outer
      Elem(13, 0, 5, 6, 3.0)});   // inside both
  ScopeSemiJoinOperator strict(std::move(probe), std::move(anchors),
                               /*or_self=*/false);
  const auto out = Unwrap(Drain(strict));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].node, 12u);
  EXPECT_EQ(out[1].node, 13u);
}

class OperatorPaperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTestDatabase(dir_.path());
    ExpectOk(workload::LoadPaperExample(db_.get()));
    index_ = std::make_unique<index::InvertedIndex>(
        Unwrap(index::InvertedIndex::Build(db_.get())));
    predicate_ = algebra::IrPredicate::FooStyle(
        {"search engine"}, {"internet", "information retrieval"});
    scorer_ = std::make_unique<algebra::WeightedCountScorer>(
        predicate_.Weights());
  }

  TempDir dir_;
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<index::InvertedIndex> index_;
  algebra::IrPredicate predicate_;
  std::unique_ptr<algebra::Scorer> scorer_;
};

TEST_F(OperatorPaperTest, TermJoinOperatorStreamsSameAsRun) {
  TermJoinOperator op(db_.get(), index_.get(), &predicate_, scorer_.get());
  const auto streamed = Unwrap(Drain(op));
  TermJoin direct(db_.get(), index_.get(), &predicate_, scorer_.get());
  const auto materialized = Unwrap(direct.Run());
  ASSERT_EQ(streamed.size(), materialized.size());
  for (size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].node, materialized[i].node);
    EXPECT_DOUBLE_EQ(streamed[i].score, materialized[i].score);
  }
}

TEST_F(OperatorPaperTest, TermJoinStreamsBeforeInputExhausted) {
  // Non-blocking check: the first element must arrive after consuming
  // only part of the posting input (strictly fewer occurrences than the
  // total).
  TermJoin join(db_.get(), index_.get(), &predicate_, scorer_.get());
  ExpectOk(join.Open());
  const auto first = Unwrap(join.Next());
  ASSERT_TRUE(first.has_value());
  uint64_t total = 0;
  for (const auto& phrase : predicate_.phrases) {
    if (phrase.terms.size() == 1) {
      total += index_->TermFrequency(phrase.terms[0]);
    }
  }
  EXPECT_LT(join.stats().occurrences, total);
}

TEST_F(OperatorPaperTest, FullPipelinePlan) {
  // Query-2 style plan built by hand:
  //   Threshold(top 3) <- Sort(score) <- ScopeSemiJoin <- TermJoin
  //                                          ^ anchors: TagScan(article)
  auto term_join = std::make_unique<TermJoinOperator>(
      db_.get(), index_.get(), &predicate_, scorer_.get());
  auto sorted_input = std::make_unique<SortOperator>(
      std::move(term_join), SortOperator::Order::kDocumentOrder);
  auto anchors = std::make_unique<TagScanOperator>(db_.get(), "article");
  auto scoped = std::make_unique<ScopeSemiJoinOperator>(
      std::move(sorted_input), std::move(anchors), /*or_self=*/true);
  algebra::ThresholdSpec spec;
  spec.top_k = 3;
  ThresholdPlanOperator root(std::move(scoped), spec);

  const std::string plan = ExplainPlan(root);
  EXPECT_NE(plan.find("Threshold(top 3)"), std::string::npos);
  EXPECT_NE(plan.find("ScopeSemiJoin(descendant-or-self)"),
            std::string::npos);
  EXPECT_NE(plan.find("TermJoin(3 phrases, simple)"), std::string::npos);
  EXPECT_NE(plan.find("TagScan(article)"), std::string::npos);

  const auto out = Unwrap(Drain(root));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_GE(out[0].score, out[1].score);
  // Top result: the whole article; runner-up: the search chapter.
  const storage::NodeRecord second = Unwrap(db_->GetNode(out[1].node));
  EXPECT_EQ(db_->TagName(second.tag_id), "chapter");
}

}  // namespace
}  // namespace tix::exec
