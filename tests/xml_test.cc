#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "xml/dom.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace tix::xml {
namespace {

Result<XmlDocument> Parse(std::string_view input) {
  return ParseXml(input, "test.xml");
}

TEST(XmlParserTest, MinimalDocument) {
  const XmlDocument doc = std::move(Parse("<a/>")).value();
  ASSERT_NE(doc.root(), nullptr);
  EXPECT_EQ(doc.root()->tag(), "a");
  EXPECT_TRUE(doc.root()->children().empty());
}

TEST(XmlParserTest, NestedElementsAndText) {
  const auto result = Parse("<a><b>hello</b><c>world</c></a>");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const XmlNode* root = result.value().root();
  ASSERT_EQ(root->children().size(), 2u);
  EXPECT_EQ(root->children()[0]->tag(), "b");
  EXPECT_EQ(root->children()[0]->children()[0]->text(), "hello");
  EXPECT_EQ(root->children()[1]->children()[0]->text(), "world");
}

TEST(XmlParserTest, Attributes) {
  const auto result = Parse(R"(<a x="1" y='two &amp; three'/>)");
  ASSERT_TRUE(result.ok());
  const XmlNode* root = result.value().root();
  ASSERT_EQ(root->attributes().size(), 2u);
  EXPECT_EQ(*root->FindAttribute("x"), "1");
  EXPECT_EQ(*root->FindAttribute("y"), "two & three");
  EXPECT_EQ(root->FindAttribute("z"), nullptr);
}

TEST(XmlParserTest, EntityDecoding) {
  const auto result = Parse("<a>&lt;tag&gt; &amp; &quot;q&quot; &apos;s&apos; &#65;&#x42;</a>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().root()->children()[0]->text(),
            "<tag> & \"q\" 's' AB");
}

TEST(XmlParserTest, NumericEntityUtf8) {
  const auto result = Parse("<a>&#233;&#x4E2D;</a>");  // é, 中
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().root()->children()[0]->text(), "\xC3\xA9\xE4\xB8\xAD");
}

TEST(XmlParserTest, CdataPreservedVerbatim) {
  const auto result = Parse("<a><![CDATA[<not> & parsed]]></a>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().root()->children()[0]->text(), "<not> & parsed");
}

TEST(XmlParserTest, CommentsAndPisIgnored) {
  const auto result = Parse(
      "<?xml version=\"1.0\"?><!-- head --><a><!-- in -->x<?pi data?></a>"
      "<!-- tail -->");
  ASSERT_TRUE(result.ok());
  const XmlNode* root = result.value().root();
  ASSERT_EQ(root->children().size(), 1u);
  EXPECT_EQ(root->children()[0]->text(), "x");
}

TEST(XmlParserTest, DoctypeWithInternalSubsetSkipped) {
  const auto result = Parse(
      "<!DOCTYPE article [ <!ELEMENT a (b)> <!ENTITY x \"y\"> ]><a/>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().root()->tag(), "a");
}

TEST(XmlParserTest, WhitespaceOnlyTextDroppedByDefault) {
  const auto result = Parse("<a>\n  <b/>\n  <c/>\n</a>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().root()->children().size(), 2u);
}

TEST(XmlParserTest, WhitespaceKeptWhenRequested) {
  ParseOptions options;
  options.skip_whitespace_text = false;
  const auto result = ParseXml("<a> <b/> </a>", "t", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().root()->children().size(), 3u);
}

TEST(XmlParserTest, MixedContent) {
  const auto result = Parse("<p>see <b>bold</b> words</p>");
  ASSERT_TRUE(result.ok());
  const XmlNode* root = result.value().root();
  ASSERT_EQ(root->children().size(), 3u);
  EXPECT_EQ(root->children()[0]->text(), "see ");
  EXPECT_EQ(root->children()[1]->tag(), "b");
  EXPECT_EQ(root->children()[2]->text(), " words");
  EXPECT_EQ(root->AllText(), "see  bold  words");
}

TEST(XmlParserTest, MismatchedTagReportsPosition) {
  const auto result = Parse("<a><b></a>");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsParseError());
  EXPECT_NE(result.status().message().find("mismatched"), std::string::npos);
  EXPECT_NE(result.status().message().find("test.xml:1:"), std::string::npos);
}

TEST(XmlParserTest, ErrorsOnGarbage) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("plain text").ok());
  EXPECT_FALSE(Parse("<a>").ok());
  EXPECT_FALSE(Parse("<a></a><b></b>").ok());
  EXPECT_FALSE(Parse("<a x=1/>").ok());
  EXPECT_FALSE(Parse("<a x=\"1\" x=\"2\"/>").ok());
  EXPECT_FALSE(Parse("<a>&bogus;</a>").ok());
  EXPECT_FALSE(Parse("<a><![CDATA[x</a>").ok());
}

TEST(XmlParserTest, DeepNestingWithinLimit) {
  std::string input;
  const int depth = 2000;
  for (int i = 0; i < depth; ++i) input += "<d>";
  input += "x";
  for (int i = 0; i < depth; ++i) input += "</d>";
  const auto result = Parse(input);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().NodeCount(), static_cast<size_t>(depth + 1));
}

TEST(XmlParserTest, DepthLimitEnforced) {
  ParseOptions options;
  options.max_depth = 10;
  std::string input;
  for (int i = 0; i < 20; ++i) input += "<d>";
  for (int i = 0; i < 20; ++i) input += "</d>";
  EXPECT_FALSE(ParseXml(input, "t", options).ok());
}

// ------------------------------------------------------------------ DOM

TEST(XmlDomTest, SubtreeSizeAndFind) {
  auto root = XmlNode::MakeElement("a");
  XmlNode* b = root->AddElement("b");
  b->AddText("t");
  root->AddElement("c");
  EXPECT_EQ(root->SubtreeSize(), 4u);
  EXPECT_EQ(root->FindFirst("b"), b);
  EXPECT_EQ(root->FindFirst("zz"), nullptr);
}

TEST(XmlDomTest, ParentLinks) {
  auto root = XmlNode::MakeElement("a");
  XmlNode* b = root->AddElement("b");
  XmlNode* t = b->AddText("x");
  EXPECT_EQ(t->parent(), b);
  EXPECT_EQ(b->parent(), root.get());
  EXPECT_EQ(root->parent(), nullptr);
}

// ----------------------------------------------------------- Serializer

TEST(XmlSerializerTest, EscapesSpecials) {
  EXPECT_EQ(EscapeText("a<b>&\"'c"), "a&lt;b&gt;&amp;&quot;&apos;c");
}

TEST(XmlSerializerTest, CompactRoundTrip) {
  const std::string source =
      R"(<a x="1"><b>hi &amp; bye</b><c/><d>t1<e/>t2</d></a>)";
  const XmlDocument doc = std::move(Parse(source)).value();
  EXPECT_EQ(SerializeDocument(doc), source);
}

TEST(XmlSerializerTest, PrettyKeepsCharacterData) {
  const auto doc = Parse("<a><b>exact text</b><c/></a>");
  SerializeOptions options;
  options.pretty = true;
  const std::string pretty = SerializeDocument(doc.value(), options);
  EXPECT_NE(pretty.find("exact text"), std::string::npos);
  // Re-parsing the pretty output yields the same character data.
  const auto reparsed = Parse(pretty);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().root()->FindFirst("b")->AllText(), "exact text");
}

// Property: serialize(parse(serialize(tree))) == serialize(tree) for
// random trees.
class XmlRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

std::unique_ptr<XmlNode> RandomTree(Random* rng, int depth) {
  auto node = XmlNode::MakeElement("e" + std::to_string(rng->NextUint32(5)));
  if (rng->NextBool(0.3)) {
    node->AddAttribute("k" + std::to_string(rng->NextUint32(3)),
                       "v<&>\"" + std::to_string(rng->NextUint32(100)));
  }
  const uint32_t children = depth > 0 ? rng->NextUint32(4) : 0;
  for (uint32_t i = 0; i < children; ++i) {
    if (rng->NextBool(0.4)) {
      node->AddText("text & <" + std::to_string(rng->NextUint32(100)) + ">");
    } else {
      node->AddChild(RandomTree(rng, depth - 1));
    }
  }
  return node;
}

TEST_P(XmlRoundTripTest, SerializeParseSerializeIsIdentity) {
  Random rng(GetParam());
  XmlDocument doc("random.xml", RandomTree(&rng, 4));
  const std::string once = SerializeDocument(doc);
  const auto reparsed = ParseXml(once, "random.xml");
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(SerializeDocument(reparsed.value()), once);
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripTest,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace tix::xml
