#include <memory>

#include <gtest/gtest.h>

#include "query/engine.h"
#include "query/lexer.h"
#include "query/parser.h"
#include "query/similarity_join.h"
#include "tests/test_util.h"
#include "workload/paper_example.h"

namespace tix::query {
namespace {

using testing::ExpectOk;
using testing::MakeTestDatabase;
using testing::TempDir;
using testing::Unwrap;

// ------------------------------------------------------------------ Lexer

TEST(LexerTest, TokenizesRepresentativeQuery) {
  const auto tokens = Unwrap(Lex(
      R"(FOR $a IN document("articles.xml")//article[@id = "1"]//* RETURN $a)"));
  ASSERT_GT(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kKeyword);
  EXPECT_EQ(tokens[0].text, "FOR");
  EXPECT_EQ(tokens[1].kind, TokenKind::kVariable);
  EXPECT_EQ(tokens[1].text, "a");
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  const auto tokens = Unwrap(Lex("for return DOCUMENT"));
  EXPECT_EQ(tokens[0].text, "FOR");
  EXPECT_EQ(tokens[1].text, "RETURN");
  EXPECT_EQ(tokens[2].text, "DOCUMENT");
}

TEST(LexerTest, NumbersAndStrings) {
  const auto tokens = Unwrap(Lex("4.5 'single' \"double\" 42"));
  EXPECT_DOUBLE_EQ(tokens[0].number, 4.5);
  EXPECT_EQ(tokens[1].text, "single");
  EXPECT_EQ(tokens[2].text, "double");
  EXPECT_DOUBLE_EQ(tokens[3].number, 42.0);
}

TEST(LexerTest, CommentsIgnored) {
  const auto tokens = Unwrap(Lex("FOR # a comment\n$a"));
  EXPECT_EQ(tokens[0].text, "FOR");
  EXPECT_EQ(tokens[1].kind, TokenKind::kVariable);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lex("\"unterminated").ok());
  EXPECT_FALSE(Lex("$").ok());
  EXPECT_FALSE(Lex("%").ok());
}

// ----------------------------------------------------------------- Parser

constexpr char kQuery2Text[] = R"(
  FOR $a IN document("articles.xml")//article[author/sname = "Doe"]//*
  SCORE $a USING foo({"search engine"}, {"internet", "information retrieval"})
  PICK $a USING pickfoo(0.8, 0.5)
  THRESHOLD score > 0.5 STOP AFTER 5
  RETURN $a
)";

TEST(ParserTest, ParsesQuery2) {
  const Query query = Unwrap(ParseQuery(kQuery2Text));
  EXPECT_EQ(query.variable, "a");
  EXPECT_EQ(query.path.document, "articles.xml");
  ASSERT_EQ(query.path.steps.size(), 2u);
  EXPECT_TRUE(query.path.steps[0].descendant);
  EXPECT_EQ(query.path.steps[0].name, "article");
  ASSERT_EQ(query.path.steps[0].predicates.size(), 1u);
  EXPECT_EQ(query.path.steps[0].predicates[0].path,
            (std::vector<std::string>{"author", "sname"}));
  EXPECT_EQ(*query.path.steps[0].predicates[0].value, "Doe");
  EXPECT_EQ(query.path.steps[1].name, "*");

  ASSERT_TRUE(query.score.has_value());
  EXPECT_EQ(query.score->scorer, "foo");
  EXPECT_EQ(query.score->primary,
            (std::vector<std::string>{"search engine"}));
  ASSERT_TRUE(query.pick.has_value());
  EXPECT_DOUBLE_EQ(query.pick->threshold, 0.8);
  ASSERT_TRUE(query.threshold.has_value());
  EXPECT_DOUBLE_EQ(*query.threshold->min_score, 0.5);
  EXPECT_EQ(*query.threshold->top_k, 5u);
}

TEST(ParserTest, AttributePredicate) {
  const Query query = Unwrap(ParseQuery(
      R"(FOR $r IN document("reviews.xml")//review[@id = "1"] RETURN $r)"));
  ASSERT_EQ(query.path.steps.size(), 1u);
  const StepPredicate& predicate = query.path.steps[0].predicates[0];
  EXPECT_TRUE(predicate.path.empty());
  EXPECT_EQ(predicate.attribute, "id");
  EXPECT_EQ(*predicate.value, "1");
}

TEST(ParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseQuery("RETURN $a").ok());
  EXPECT_FALSE(ParseQuery("FOR $a IN document(\"d\") RETURN $a").ok());
  EXPECT_FALSE(
      ParseQuery("FOR $a IN document(\"d\")//x RETURN $b").ok());
  EXPECT_FALSE(
      ParseQuery(
          "FOR $a IN document(\"d\")//x PICK $a USING pickfoo RETURN $a")
          .ok());  // PICK without SCORE
  EXPECT_FALSE(
      ParseQuery("FOR $a IN document(\"d\")//x SCORE $a USING bogus({\"t\"}) "
                 "RETURN $a")
          .ok());
  EXPECT_FALSE(
      ParseQuery("FOR $a IN document(\"d\")//x THRESHOLD RETURN $a").ok());
}

// ----------------------------------------------------------------- Engine

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTestDatabase(dir_.path());
    ExpectOk(workload::LoadPaperExample(db_.get()));
    index_ = std::make_unique<index::InvertedIndex>(
        Unwrap(index::InvertedIndex::Build(db_.get())));
    engine_ = std::make_unique<QueryEngine>(db_.get(), index_.get());
  }

  std::string TagOf(storage::NodeId node) {
    const storage::NodeRecord record = Unwrap(db_->GetNode(node));
    return db_->TagName(record.tag_id);
  }

  TempDir dir_;
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<index::InvertedIndex> index_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(EngineTest, BooleanQueryReturnsMatches) {
  const QueryOutput output = Unwrap(engine_->ExecuteText(
      R"(FOR $s IN document("articles.xml")//chapter/section RETURN $s)"));
  EXPECT_EQ(output.results.size(), 3u);
  for (const QueryResultItem& item : output.results) {
    EXPECT_EQ(TagOf(item.node), "section");
  }
}

TEST_F(EngineTest, BooleanQueryWithValuePredicate) {
  const QueryOutput output = Unwrap(engine_->ExecuteText(
      R"(FOR $r IN document("reviews.xml")//review[rating = "5"] RETURN $r)"));
  ASSERT_EQ(output.results.size(), 1u);
  EXPECT_EQ(TagOf(output.results[0].node), "review");
}

TEST_F(EngineTest, Query1StyleScoring) {
  const QueryOutput output = Unwrap(engine_->ExecuteText(R"(
      FOR $a IN document("articles.xml")//article//*
      SCORE $a USING foo({"search engine"},
                         {"internet", "information retrieval"})
      THRESHOLD STOP AFTER 3
      RETURN $a)"));
  ASSERT_EQ(output.results.size(), 3u);
  // Scores descend.
  EXPECT_GE(output.results[0].score, output.results[1].score);
  EXPECT_GE(output.results[1].score, output.results[2].score);
  // The top element is the article (contains everything); the runner-up
  // is the search chapter (the paper's target result).
  EXPECT_EQ(TagOf(output.results[0].node), "article");
  EXPECT_EQ(TagOf(output.results[1].node), "chapter");
}

TEST_F(EngineTest, Query2StructurePlusScoring) {
  const QueryOutput query2 = Unwrap(engine_->ExecuteText(kQuery2Text));
  ASSERT_FALSE(query2.results.empty());
  EXPECT_LE(query2.results.size(), 5u);
  for (const QueryResultItem& item : query2.results) {
    EXPECT_GT(item.score, 0.5);
  }
  // With an author that does not exist, the same query is empty.
  const QueryOutput none = Unwrap(engine_->ExecuteText(R"(
      FOR $a IN document("articles.xml")//article[author/sname = "Roe"]//*
      SCORE $a USING foo({"search engine"})
      RETURN $a)"));
  EXPECT_TRUE(none.results.empty());
  EXPECT_EQ(none.stats.anchors, 0u);
}

TEST_F(EngineTest, PickReducesGranularityRedundancy) {
  const QueryOutput unpicked = Unwrap(engine_->ExecuteText(R"(
      FOR $a IN document("articles.xml")//article//*
      SCORE $a USING foo({"search engine"},
                         {"internet", "information retrieval"})
      RETURN $a)"));
  const QueryOutput picked = Unwrap(engine_->ExecuteText(R"(
      FOR $a IN document("articles.xml")//article//*
      SCORE $a USING foo({"search engine"},
                         {"internet", "information retrieval"})
      PICK $a USING pickfoo(0.8, 0.5)
      RETURN $a)"));
  EXPECT_LT(picked.results.size(), unpicked.results.size());
  ASSERT_FALSE(picked.results.empty());
}

TEST_F(EngineTest, ComplexScorerRuns) {
  const QueryOutput output = Unwrap(engine_->ExecuteText(R"(
      FOR $a IN document("articles.xml")//article//*
      SCORE $a USING complexfoo({"search engine"}, {"internet"})
      THRESHOLD STOP AFTER 5
      RETURN $a)"));
  ASSERT_FALSE(output.results.empty());
  for (const QueryResultItem& item : output.results) {
    EXPECT_GT(item.score, 0.0);
  }
}

TEST_F(EngineTest, TfIdfScorerRuns) {
  const QueryOutput output = Unwrap(engine_->ExecuteText(R"(
      FOR $a IN document("articles.xml")//article//*
      SCORE $a USING tfidf({"newsinessence"})
      RETURN $a)"));
  ASSERT_FALSE(output.results.empty());
}

TEST_F(EngineTest, Bm25ScorerRanksShortFocusedElements) {
  const QueryOutput output = Unwrap(engine_->ExecuteText(R"(
      FOR $a IN document("articles.xml")//article//*
      SCORE $a USING bm25({"search engine"}, {"internet"})
      THRESHOLD STOP AFTER 3
      RETURN $a)"));
  ASSERT_FALSE(output.results.empty());
  // Length normalization must not rank the whole article first: a
  // focused descendant wins.
  EXPECT_NE(TagOf(output.results[0].node), "article");
}

TEST_F(EngineTest, TopFractionPickUsesHistogram) {
  const QueryOutput output = Unwrap(engine_->ExecuteText(R"(
      FOR $a IN document("articles.xml")//article//*
      SCORE $a USING foo({"search engine"},
                         {"internet", "information retrieval"})
      PICK $a USING topfraction(0.3, 0.2)
      RETURN $a)"));
  ASSERT_FALSE(output.results.empty());
  // The histogram-driven criterion picks a granularity without an
  // absolute threshold; results are a strict subset of the unpicked set.
  EXPECT_LT(output.results.size(), 12u);
}

TEST_F(EngineTest, NamedTargetStep) {
  const QueryOutput output = Unwrap(engine_->ExecuteText(R"(
      FOR $p IN document("articles.xml")//article//p
      SCORE $p USING foo({"search engine"})
      RETURN $p)"));
  ASSERT_FALSE(output.results.empty());
  for (const QueryResultItem& item : output.results) {
    EXPECT_EQ(TagOf(item.node), "p");
  }
}

TEST_F(EngineTest, UnknownDocumentIsNotFound) {
  EXPECT_TRUE(engine_->ExecuteText(
                     R"(FOR $a IN document("nope.xml")//a RETURN $a)")
                  .status()
                  .IsNotFound());
}

TEST_F(EngineTest, RenderXmlEmitsResults) {
  const QueryOutput output = Unwrap(engine_->ExecuteText(R"(
      FOR $a IN document("articles.xml")//article//p
      SCORE $a USING foo({"search engine"})
      THRESHOLD STOP AFTER 1
      RETURN $a)"));
  const std::string xml = Unwrap(engine_->RenderXml(output));
  EXPECT_NE(xml.find("<result>"), std::string::npos);
  EXPECT_NE(xml.find("<score>"), std::string::npos);
  EXPECT_NE(xml.find("<p>"), std::string::npos);
}

TEST_F(EngineTest, EnhancedEngineAgreesWithPlain) {
  EngineOptions options;
  options.enhanced_term_join = true;
  QueryEngine enhanced(db_.get(), index_.get(), options);
  const QueryOutput a = Unwrap(engine_->ExecuteText(kQuery2Text));
  const QueryOutput b = Unwrap(enhanced.ExecuteText(kQuery2Text));
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].node, b.results[i].node);
    EXPECT_NEAR(a.results[i].score, b.results[i].score, 1e-9);
  }
}

// ---------------------------------------------------------- join queries

TEST_F(EngineTest, Query3InTheLanguage) {
  // The paper's Query 3, end to end in the query language: articles by
  // Doe joined with reviews on title similarity, IR-scored, combined
  // with ScoreBar.
  const QueryOutput output = Unwrap(engine_->ExecuteText(R"(
      FOR $a IN document("articles.xml")//article[author/sname = "Doe"]
      FOR $b IN document("reviews.xml")//review
      SIMJOIN $a/article-title WITH $b/title SIMSCORE > 1
      SCORE $a USING foo({"search engine"},
                         {"internet", "information retrieval"})
      RETURN $a)"));
  // Only review 1 ("Internet Technologies", sim 2) passes SIMSCORE > 1.
  ASSERT_EQ(output.pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(output.pairs[0].similarity, 2.0);
  // Combined = ScoreBar(2, best component score) > 2.
  EXPECT_GT(output.pairs[0].combined, 2.0);
  EXPECT_EQ(output.results.size(), 1u);
  EXPECT_EQ(output.results[0].node, output.pairs[0].left);
  EXPECT_EQ(TagOf(output.pairs[0].left), "article");
  EXPECT_EQ(TagOf(output.pairs[0].right), "review");
}

TEST_F(EngineTest, JoinWithoutScoreUsesSimilarity) {
  const QueryOutput output = Unwrap(engine_->ExecuteText(R"(
      FOR $a IN document("articles.xml")//article
      FOR $b IN document("reviews.xml")//review
      SIMJOIN $a/article-title WITH $b/title SIMSCORE > 0.5
      RETURN $a)"));
  // Both reviews match "Internet Technologies" (sim 2 and 1).
  ASSERT_EQ(output.pairs.size(), 2u);
  EXPECT_DOUBLE_EQ(output.pairs[0].combined, 2.0);
  EXPECT_DOUBLE_EQ(output.pairs[1].combined, 1.0);
}

TEST_F(EngineTest, JoinThresholdAndTopK) {
  const QueryOutput output = Unwrap(engine_->ExecuteText(R"(
      FOR $a IN document("articles.xml")//article
      FOR $b IN document("reviews.xml")//review
      SIMJOIN $a/article-title WITH $b/title
      THRESHOLD score > 0.5 STOP AFTER 1
      RETURN $a)"));
  ASSERT_EQ(output.pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(output.pairs[0].combined, 2.0);
}

TEST_F(EngineTest, JoinEdgeCases) {
  // Missing key tag: no pairs, no error.
  const QueryOutput no_tag = Unwrap(engine_->ExecuteText(R"(
      FOR $a IN document("articles.xml")//article
      FOR $b IN document("reviews.xml")//review
      SIMJOIN $a/nonexistent WITH $b/title
      RETURN $a)"));
  EXPECT_TRUE(no_tag.pairs.empty());
  // No matching left anchors: empty output.
  const QueryOutput no_anchor = Unwrap(engine_->ExecuteText(R"(
      FOR $a IN document("articles.xml")//article[author/sname = "Roe"]
      FOR $b IN document("reviews.xml")//review
      SIMJOIN $a/article-title WITH $b/title
      RETURN $a)"));
  EXPECT_TRUE(no_anchor.pairs.empty());
  // Default SIMSCORE threshold is 0: any positive similarity joins.
  const QueryOutput default_threshold = Unwrap(engine_->ExecuteText(R"(
      FOR $a IN document("articles.xml")//article
      FOR $b IN document("reviews.xml")//review
      SIMJOIN $a/article-title WITH $b/title
      RETURN $a)"));
  EXPECT_EQ(default_threshold.pairs.size(), 2u);
}

TEST_F(EngineTest, JoinWithComplexScorer) {
  const QueryOutput output = Unwrap(engine_->ExecuteText(R"(
      FOR $a IN document("articles.xml")//article
      FOR $b IN document("reviews.xml")//review
      SIMJOIN $a/article-title WITH $b/title SIMSCORE > 1
      SCORE $a USING complexfoo({"search engine"}, {"internet"})
      RETURN $a)"));
  ASSERT_EQ(output.pairs.size(), 1u);
  EXPECT_GT(output.pairs[0].combined, output.pairs[0].similarity);
}

TEST_F(EngineTest, JoinGrammarErrors) {
  // SIMJOIN without a second FOR.
  EXPECT_FALSE(engine_
                   ->ExecuteText(R"(
      FOR $a IN document("articles.xml")//article
      SIMJOIN $a/atl WITH $b/title
      RETURN $a)")
                   .ok());
  // Second FOR without SIMJOIN.
  EXPECT_FALSE(engine_
                   ->ExecuteText(R"(
      FOR $a IN document("articles.xml")//article
      FOR $b IN document("reviews.xml")//review
      RETURN $a)")
                   .ok());
  // PICK in a join query.
  EXPECT_FALSE(engine_
                   ->ExecuteText(R"(
      FOR $a IN document("articles.xml")//article
      FOR $b IN document("reviews.xml")//review
      SIMJOIN $a/article-title WITH $b/title
      SCORE $a USING foo({"x"})
      PICK $a USING pickfoo
      RETURN $a)")
                   .ok());
  // Variables in the wrong order.
  EXPECT_FALSE(engine_
                   ->ExecuteText(R"(
      FOR $a IN document("articles.xml")//article
      FOR $b IN document("reviews.xml")//review
      SIMJOIN $b/title WITH $a/article-title
      RETURN $a)")
                   .ok());
}

// -------------------------------------------------------- SimilarityJoin

TEST_F(EngineTest, SimilarityJoinQuery3Shape) {
  // Query 3: join article titles with review titles.
  const auto* articles = db_->ElementsWithTag(db_->LookupTag("article"));
  const auto* reviews = db_->ElementsWithTag(db_->LookupTag("review"));
  ASSERT_NE(articles, nullptr);
  ASSERT_NE(reviews, nullptr);
  const auto titles = Unwrap(
      FirstDescendantWithTag(db_.get(), *articles, "article-title"));
  const auto review_titles =
      Unwrap(FirstDescendantWithTag(db_.get(), *reviews, "title"));
  ASSERT_EQ(titles.size(), 1u);
  ASSERT_EQ(review_titles.size(), 2u);

  SimilarityJoinOptions options;
  options.min_similarity = 1.0;  // Query 3's "Threshold simScore > 1"
  const auto pairs = Unwrap(SimilarityJoin(db_.get(), titles,
                                           review_titles, options));
  // "Internet Technologies" vs "Internet Technologies" (sim 2) survives;
  // vs "WWW Technologies" (sim 1) does not (> 1 strict).
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(pairs[0].similarity, 2.0);
  EXPECT_EQ(pairs[0].right, review_titles[0]);
}

TEST_F(EngineTest, FirstDescendantWithTagMissing) {
  const auto* articles = db_->ElementsWithTag(db_->LookupTag("article"));
  const auto missing =
      Unwrap(FirstDescendantWithTag(db_.get(), *articles, "nonexistent"));
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0], storage::kInvalidNodeId);
}

}  // namespace
}  // namespace tix::query
