#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "algebra/pattern_tree.h"
#include "algebra/pick.h"
#include "algebra/reference_eval.h"
#include "algebra/scored_tree.h"
#include "algebra/scoring.h"
#include "algebra/threshold.h"
#include "algebra/tree_render.h"
#include "tests/test_util.h"
#include "workload/paper_example.h"

namespace tix::algebra {
namespace {

using testing::ExpectOk;
using testing::MakeTestDatabase;
using testing::TempDir;
using testing::Unwrap;

// ---------------------------------------------------------------- Scoring

TEST(ScoringTest, FooStylepredicateWeights) {
  const IrPredicate predicate = IrPredicate::FooStyle(
      {"search engine"}, {"internet", "information retrieval"});
  ASSERT_EQ(predicate.num_phrases(), 3u);
  EXPECT_EQ(predicate.phrases[0].terms,
            (std::vector<std::string>{"search", "engine"}));
  EXPECT_DOUBLE_EQ(predicate.phrases[0].weight, 0.8);
  EXPECT_EQ(predicate.phrases[1].terms, (std::vector<std::string>{"internet"}));
  EXPECT_DOUBLE_EQ(predicate.phrases[1].weight, 0.6);
  EXPECT_EQ(predicate.Weights(), (std::vector<double>{0.8, 0.6, 0.6}));
}

TEST(ScoringTest, WeightedCountScorerIsScoreFoo) {
  WeightedCountScorer scorer({0.8, 0.6, 0.6});
  const uint32_t counts[] = {1, 0, 0};
  EXPECT_DOUBLE_EQ(scorer.Score(counts), 0.8);
  const uint32_t counts2[] = {2, 1, 3};
  EXPECT_DOUBLE_EQ(scorer.Score(counts2), 2 * 0.8 + 0.6 + 3 * 0.6);
  EXPECT_FALSE(scorer.is_complex());
}

TEST(ScoringTest, TfIdfScorerUsesLogTf) {
  TfIdfScorer scorer({1.0, 1.0}, {2.0, 0.5});
  const uint32_t counts[] = {1, 0};
  EXPECT_DOUBLE_EQ(scorer.Score(counts), 2.0);  // (1+log 1) * 2
  const uint32_t counts2[] = {0, 4};
  EXPECT_NEAR(scorer.Score(counts2), (1.0 + std::log(4.0)) * 0.5, 1e-12);
}

TEST(ScoringTest, ComplexScorerBoostsProximity) {
  ComplexProximityScorer scorer({1.0, 1.0});
  EXPECT_TRUE(scorer.is_complex());
  const uint32_t counts[] = {1, 1};

  // Two occurrences of different phrases, adjacent in one text node.
  const TermOccurrence near_pair[] = {{0, 100, 5}, {1, 101, 5}};
  ScoreContext near_context;
  near_context.counts = counts;
  near_context.occurrences = near_pair;

  const TermOccurrence far_pair[] = {{0, 100, 5}, {1, 900, 5}};
  ScoreContext far_context;
  far_context.counts = counts;
  far_context.occurrences = far_pair;

  EXPECT_GT(scorer.ScoreComplex(near_context),
            scorer.ScoreComplex(far_context));
  // Both at least the base (proximity multiplies by >= 1).
  EXPECT_GE(scorer.ScoreComplex(far_context), 2.0);
}

TEST(ScoringTest, ComplexScorerChildRatio) {
  ComplexProximityScorer scorer({1.0});
  const uint32_t counts[] = {2};
  const TermOccurrence occurrences[] = {{0, 10, 3}, {0, 11, 3}};
  ScoreContext focused;
  focused.counts = counts;
  focused.occurrences = occurrences;
  focused.total_children = 4;
  focused.relevant_children = 4;
  ScoreContext diluted = focused;
  diluted.relevant_children = 1;
  EXPECT_GT(scorer.ScoreComplex(focused), scorer.ScoreComplex(diluted));
  EXPECT_NEAR(scorer.ScoreComplex(focused) / 4.0,
              scorer.ScoreComplex(diluted), 1e-12);
}

TEST(ScoringTest, ComplexScorerZeroBaseStaysZero) {
  ComplexProximityScorer scorer({1.0});
  const uint32_t counts[] = {0};
  ScoreContext context;
  context.counts = counts;
  context.total_children = 3;
  EXPECT_DOUBLE_EQ(scorer.ScoreComplex(context), 0.0);
}

TEST(ScoringTest, LengthNormalizedScorerPenalizesLongElements) {
  LengthNormalizedScorer scorer({1.0}, {1.0}, /*average_element_span=*/50.0);
  EXPECT_TRUE(scorer.is_complex());
  const uint32_t counts[] = {3};
  ScoreContext short_element;
  short_element.counts = counts;
  short_element.element_start = 0;
  short_element.element_end = 20;
  ScoreContext long_element;
  long_element.counts = counts;
  long_element.element_start = 0;
  long_element.element_end = 500;
  EXPECT_GT(scorer.ScoreComplex(short_element),
            scorer.ScoreComplex(long_element));
  // Saturation: 100 occurrences score less than 100x one occurrence.
  const uint32_t one[] = {1};
  const uint32_t many[] = {100};
  ScoreContext base = short_element;
  base.counts = one;
  ScoreContext heavy = short_element;
  heavy.counts = many;
  EXPECT_LT(scorer.ScoreComplex(heavy),
            100.0 * scorer.ScoreComplex(base));
  EXPECT_GT(scorer.ScoreComplex(heavy), scorer.ScoreComplex(base));
}

TEST(ScoringTest, LengthNormalizedScorerFallbackWithoutSpan) {
  LengthNormalizedScorer scorer({1.0}, {2.0}, 50.0);
  const uint32_t counts[] = {2};
  // Simple path assumes average length; must be finite and positive.
  EXPECT_GT(scorer.Score(counts), 0.0);
  const uint32_t zero[] = {0};
  EXPECT_DOUBLE_EQ(scorer.Score(zero), 0.0);
}

TEST(ScoringTest, ScoreSimCountsCommonWords) {
  const std::string a[] = {"internet", "technologies"};
  const std::string b[] = {"internet", "technologies"};
  EXPECT_DOUBLE_EQ(ScoreSim(a, b), 2.0);
  const std::string c[] = {"www", "technologies"};
  EXPECT_DOUBLE_EQ(ScoreSim(a, c), 1.0);
  const std::string d[] = {"unrelated"};
  EXPECT_DOUBLE_EQ(ScoreSim(a, d), 0.0);
  // Multiset semantics: repeated words only match as often as they occur.
  const std::string e[] = {"x", "x"};
  const std::string f[] = {"x"};
  EXPECT_DOUBLE_EQ(ScoreSim(e, f), 1.0);
}

TEST(ScoringTest, ScoreBarGatesOnIrScore) {
  EXPECT_DOUBLE_EQ(ScoreBar(2.0, 0.8), 2.8);
  EXPECT_DOUBLE_EQ(ScoreBar(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(ScoreBar(0.0, 1.0), 1.0);
}

// -------------------------------------------------------------- Threshold

TEST(ThresholdTest, MinScoreFilters) {
  const std::vector<double> scores = {0.5, 2.0, 1.0, 3.0};
  ThresholdSpec spec;
  spec.min_score = 0.9;
  const auto kept =
      ApplyThreshold(scores.size(), [&](size_t i) { return scores[i]; }, spec);
  EXPECT_EQ(kept, (std::vector<size_t>{3, 1, 2}));
}

TEST(ThresholdTest, TopKKeepsBest) {
  const std::vector<double> scores = {0.5, 2.0, 1.0, 3.0, 2.5};
  ThresholdSpec spec;
  spec.top_k = 2;
  const auto kept =
      ApplyThreshold(scores.size(), [&](size_t i) { return scores[i]; }, spec);
  EXPECT_EQ(kept, (std::vector<size_t>{3, 4}));
}

TEST(ThresholdTest, NoOpSpecKeepsEverythingSorted) {
  const std::vector<double> scores = {1.0, 1.0, 0.5};
  ThresholdSpec spec;
  EXPECT_TRUE(spec.IsNoOp());
  const auto kept =
      ApplyThreshold(scores.size(), [&](size_t i) { return scores[i]; }, spec);
  EXPECT_EQ(kept, (std::vector<size_t>{0, 1, 2}));  // stable on ties
}

// ------------------------------------------------------------------ Pick

/// Builds the scored tree of Figure 6 (projection result of Query 2):
/// article[5.6]{ article-title[0.6], chapter[5.0]{ section[0.8]{st[0.8]},
/// section[0.6]{st2[0.6]}, section[3.6]{p[0.8],p[1.4],p[1.4]} } }.
ScoredTree Figure6Tree() {
  auto root = std::make_unique<ScoredTreeNode>(1);  // article
  root->set_score(5.6);
  ScoredTreeNode* title = root->AddChild(2);
  title->set_score(0.6);
  ScoredTreeNode* chapter = root->AddChild(10);
  chapter->set_score(5.0);
  ScoredTreeNode* section1 = chapter->AddChild(12);
  section1->set_score(0.8);
  section1->AddChild(13)->set_score(0.8);
  ScoredTreeNode* section2 = chapter->AddChild(14);
  section2->set_score(0.6);
  section2->AddChild(15)->set_score(0.6);
  ScoredTreeNode* section3 = chapter->AddChild(16);
  section3->set_score(3.6);
  section3->AddChild(18)->set_score(0.8);
  section3->AddChild(19)->set_score(1.4);
  section3->AddChild(20)->set_score(1.4);
  return ScoredTree(std::move(root));
}

TEST(PickTest, PickFooDetWorth) {
  PickFooCriterion criterion;  // threshold 0.8, fraction 0.5
  PickNodeInfo info;
  info.total_children = 3;
  info.relevant_children = 2;
  EXPECT_TRUE(criterion.DetWorth(info));  // 2/3 > 50%
  info.relevant_children = 1;
  EXPECT_FALSE(criterion.DetWorth(info));
  info.total_children = 0;
  EXPECT_FALSE(criterion.DetWorth(info));
}

TEST(PickTest, ReferencePickOnFigure6MatchesFigure8) {
  // With PickFoo semantics: article (1 of 3 children relevant: chapter
  // 5.0 >= .8, title 0.6 < .8 ... chapter relevant only => 1/3 < 50% not
  // worth). chapter: children sections scored {0.8, 0.6, 3.6}: two of
  // three >= 0.8 => worth, picked. section3: children {0.8,1.4,1.4} all
  // relevant => worth, but parent chapter picked => suppressed
  // (parent/child redundancy). section1: child st 0.8 relevant => worth
  // (1/1), parent chapter picked => suppressed.
  const ScoredTree tree = Figure6Tree();
  PickFooCriterion criterion;
  const auto picked = ReferencePick(tree, criterion);
  EXPECT_EQ(picked, (std::vector<storage::NodeId>{10}));
}

TEST(PickTest, SuppressionOnlyAppliesToDirectParent) {
  // grandparent picked, parent not worth -> grandchild pickable.
  auto root = std::make_unique<ScoredTreeNode>(1);
  ScoredTreeNode* a = root->AddChild(2);
  a->set_score(1.0);
  ScoredTreeNode* b = root->AddChild(3);
  b->set_score(1.0);
  ScoredTreeNode* c = a->AddChild(4);
  c->set_score(0.1);
  ScoredTreeNode* d = c->AddChild(5);
  d->set_score(1.0);
  d->AddChild(6)->set_score(1.0);
  // root: 2/2 children relevant -> picked.
  // a: children {0.1} -> not worth. c: child {1.0} -> worth; parent a not
  // picked, grandparent root picked but IsSameClass(default) only
  // matches the direct parent level... c's level is 2, root level 0 ->
  // not suppressed -> picked. d: worth (child 1.0), parent c picked ->
  // suppressed.
  ScoredTree tree(std::move(root));
  PickFooCriterion criterion;
  const auto picked = ReferencePick(tree, criterion);
  EXPECT_EQ(picked, (std::vector<storage::NodeId>{1, 4}));
}

TEST(PickTest, LevelParityClassSuppressesAcrossLevels) {
  auto root = std::make_unique<ScoredTreeNode>(1);
  ScoredTreeNode* a = root->AddChild(2);
  a->set_score(1.0);
  ScoredTreeNode* b = root->AddChild(3);
  b->set_score(1.0);
  ScoredTreeNode* c = a->AddChild(4);
  c->set_score(0.1);
  ScoredTreeNode* d = c->AddChild(5);
  d->set_score(1.0);
  d->AddChild(6)->set_score(1.0);
  ScoredTree tree(std::move(root));
  // With parity classes, node 4 (level 2) shares root's class (level 0)
  // and is suppressed; node 5 (level 3, odd parity) is NOT suppressed by
  // the even-level root, so it is picked.
  LevelParityPickCriterion criterion;
  const auto picked = ReferencePick(tree, criterion);
  EXPECT_EQ(picked, (std::vector<storage::NodeId>{1, 5}));
}

TEST(ScoreHistogramTest, ThresholdForTopFraction) {
  std::vector<double> scores;
  for (int i = 1; i <= 100; ++i) scores.push_back(i);
  ScoreHistogram histogram(scores, 100);
  EXPECT_EQ(histogram.total(), 100u);
  const double t10 = histogram.ThresholdForTopFraction(0.10);
  EXPECT_GE(histogram.CountAbove(t10), 10u);
  EXPECT_LE(histogram.CountAbove(t10), 13u);
  EXPECT_EQ(histogram.CountAbove(histogram.min_score()), 100u);
}

TEST(PickTest, QuantileCriterionDerivesThresholdFromHistogram) {
  // Scores 1..100: the top-20% threshold lands around 80, so a node
  // with children scored {85, 90} is worth returning while one with
  // children {10, 20} is not — without the user naming "80".
  std::vector<double> scores;
  for (int i = 1; i <= 100; ++i) scores.push_back(i);
  const ScoreHistogram histogram(scores, 100);
  const QuantilePickCriterion criterion(histogram, 0.2, 0.5);
  EXPECT_NEAR(criterion.relevance_threshold(), 80.0, 3.0);
  PickNodeInfo hot;
  hot.total_children = 2;
  hot.relevant_children = 2;
  EXPECT_TRUE(criterion.DetWorth(hot));
}

TEST(ScoreHistogramTest, EmptyAndConstantInputs) {
  ScoreHistogram empty({});
  EXPECT_EQ(empty.total(), 0u);
  EXPECT_EQ(empty.CountAbove(1.0), 0u);
  ScoreHistogram constant({2.0, 2.0, 2.0});
  EXPECT_EQ(constant.total(), 3u);
  EXPECT_EQ(constant.CountAbove(2.0), 3u);
}

// --------------------------------------------------- Pattern + reference

class ReferenceEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTestDatabase(dir_.path());
    ExpectOk(workload::LoadPaperExample(db_.get()));
  }

  /// The scored pattern tree of Figure 3 (Query 2): article with
  /// author/sname = "Doe" and an ad* IR node scored by ScoreFoo.
  ScoredPatternTree Query2Pattern() {
    ScoredPatternTree pattern;
    PatternNode* article = pattern.CreateRoot(1);
    article->set_tag("article");
    article->set_secondary_score(SecondaryScore{4, SecondaryScore::Aggregate::kMax});
    PatternNode* author = article->AddChild(2, Axis::kDescendant);
    author->set_tag("author");
    PatternNode* sname = author->AddChild(3, Axis::kChild);
    sname->set_tag("sname");
    sname->AddPredicate(
        Predicate{Predicate::Kind::kContentEquals, "", "Doe"});
    PatternNode* unit = article->AddChild(4, Axis::kDescendantOrSelf);
    unit->set_ir(IrPredicate::FooStyle(
                     {"search engine"}, {"internet", "information retrieval"}),
                 std::make_shared<WeightedCountScorer>(
                     std::vector<double>{0.8, 0.6, 0.6}));
    return pattern;
  }

  TempDir dir_;
  std::unique_ptr<storage::Database> db_;
};

TEST_F(ReferenceEvalTest, ScanSubtreeCountsPhrases) {
  const IrPredicate predicate = IrPredicate::FooStyle(
      {"search engine"}, {"internet", "information retrieval"});
  const storage::NodeId article_root = db_->documents()[0].root;
  const auto occurrences =
      Unwrap(ScanSubtreeOccurrences(db_.get(), article_root, predicate));
  // "search engine" appears as an exact phrase twice: the section title
  // "Search Engine Basics" and "search engine NewsInEssence". The other
  // mentions are "search engines" (no stemming by default).
  EXPECT_EQ(occurrences.counts[0], 2u);
  EXPECT_GE(occurrences.counts[1], 2u);  // "internet"
  EXPECT_GE(occurrences.counts[2], 2u);  // "information retrieval"
  // Occurrences sorted by position.
  for (size_t i = 1; i < occurrences.occurrences.size(); ++i) {
    EXPECT_LE(occurrences.occurrences[i - 1].word_pos,
              occurrences.occurrences[i].word_pos);
  }
}

TEST_F(ReferenceEvalTest, MatchPatternFindsEmbeddings) {
  const ScoredPatternTree pattern = Query2Pattern();
  const auto embeddings = Unwrap(MatchPattern(db_.get(), pattern));
  // One article, one author "Doe", and one binding of $4 per element in
  // the article subtree (ad* includes the article itself).
  ASSERT_FALSE(embeddings.empty());
  for (const Embedding& embedding : embeddings) {
    ASSERT_EQ(embedding.size(), 4u);
    EXPECT_EQ(embedding[0].first, 1);
    // $1 must bind the article root.
    EXPECT_EQ(embedding[0].second, db_->documents()[0].root);
  }
}

TEST_F(ReferenceEvalTest, NoEmbeddingsWhenPredicateFails) {
  ScoredPatternTree pattern;
  PatternNode* article = pattern.CreateRoot(1);
  article->set_tag("article");
  PatternNode* sname = article->AddChild(2, Axis::kDescendant);
  sname->set_tag("sname");
  sname->AddPredicate(Predicate{Predicate::Kind::kContentEquals, "", "Roe"});
  EXPECT_TRUE(Unwrap(MatchPattern(db_.get(), pattern)).empty());
}

TEST_F(ReferenceEvalTest, AttributePredicate) {
  ScoredPatternTree pattern;
  PatternNode* author = pattern.CreateRoot(1);
  author->set_tag("author");
  author->AddPredicate(
      Predicate{Predicate::Kind::kAttributeEquals, "id", "first"});
  EXPECT_EQ(Unwrap(MatchPattern(db_.get(), pattern)).size(), 1u);
  ScoredPatternTree none;
  PatternNode* author2 = none.CreateRoot(1);
  author2->set_tag("author");
  author2->AddPredicate(
      Predicate{Predicate::Kind::kAttributeEquals, "id", "second"});
  EXPECT_TRUE(Unwrap(MatchPattern(db_.get(), none)).empty());
}

TEST_F(ReferenceEvalTest, ScoredSelectionProducesScoredTrees) {
  const ScoredPatternTree pattern = Query2Pattern();
  const auto trees = Unwrap(ScoredSelection(db_.get(), pattern));
  ASSERT_FALSE(trees.empty());
  // Each witness tree is rooted at the article, whose (secondary) score
  // equals the bound $4 node's score in that embedding.
  double best = 0.0;
  for (const ScoredTree& tree : trees) {
    ASSERT_FALSE(tree.empty());
    EXPECT_EQ(tree.root()->node(), db_->documents()[0].root);
    best = std::max(best, tree.Score());
  }
  // The best embedding binds $4 to a node containing everything:
  // 1*0.8 + internet_count*0.6 + ir_count*0.6 > 2.
  EXPECT_GT(best, 2.0);
}

TEST_F(ReferenceEvalTest, ScoredProjectionMergesPerRoot) {
  const ScoredPatternTree pattern = Query2Pattern();
  const auto trees = Unwrap(ScoredProjection(db_.get(), pattern, {1, 4}));
  ASSERT_EQ(trees.size(), 1u);  // one article
  const ScoredTree& tree = trees[0];
  EXPECT_EQ(tree.root()->node(), db_->documents()[0].root);
  // Root (secondary IR) carries the max over $4 scores, and at least the
  // whole-article score.
  EXPECT_GT(tree.Score(), 2.0);
  // All zero-score IR matches were removed: every node in the tree with
  // a score has score > 0.
  size_t scored_nodes = 0;
  tree.root()->PreOrderConst([&](const ScoredTreeNode& node) {
    if (node.score().has_value()) {
      EXPECT_GT(*node.score(), 0.0);
      ++scored_nodes;
    }
  });
  EXPECT_GT(scored_nodes, 3u);
}

TEST_F(ReferenceEvalTest, ScoredJoinReproducesFigure7) {
  // Query 3: articles by Doe joined with reviews on title similarity;
  // the product root's score is ScoreBar(simScore, unit score).
  ScoredPatternTree left;
  PatternNode* article = left.CreateRoot(2);
  article->set_tag("article");
  PatternNode* title = article->AddChild(3, Axis::kChild);
  title->set_tag("article-title");
  PatternNode* author = article->AddChild(4, Axis::kDescendant);
  author->set_tag("author");
  PatternNode* sname = author->AddChild(5, Axis::kChild);
  sname->set_tag("sname");
  sname->AddPredicate(
      Predicate{Predicate::Kind::kContentEquals, "", "Doe"});
  PatternNode* unit = article->AddChild(6, Axis::kDescendantOrSelf);
  unit->set_ir(IrPredicate::FooStyle(
                   {"search engine"}, {"internet", "information retrieval"}),
               std::make_shared<WeightedCountScorer>(
                   std::vector<double>{0.8, 0.6, 0.6}));

  ScoredPatternTree right;
  PatternNode* review = right.CreateRoot(7);
  review->set_tag("review");
  PatternNode* review_title = review->AddChild(8, Axis::kChild);
  review_title->set_tag("title");

  ScoredJoinSpec spec;
  spec.left_sim_label = 3;
  spec.right_sim_label = 8;
  spec.min_similarity = 1.0;  // Query 3: Threshold simScore > 1
  spec.left_ir_label = 6;

  const auto trees = Unwrap(ScoredJoin(db_.get(), left, right, spec));
  ASSERT_FALSE(trees.empty());
  // Only review 1 ("Internet Technologies", sim 2) survives; review 2
  // ("WWW Technologies", sim 1) fails the strict threshold. Every
  // product root has a virtual node, two children, and score =
  // 2 + unit score > 2.
  double best = 0.0;
  for (const ScoredTree& tree : trees) {
    EXPECT_EQ(tree.root()->node(), storage::kInvalidNodeId);
    ASSERT_EQ(tree.root()->children().size(), 2u);
    EXPECT_GT(tree.Score(), 2.0);
    best = std::max(best, tree.Score());
    // The right child is the review witness tree.
    EXPECT_EQ(tree.root()->children()[1]->matched_label(), 7);
  }
  // Best pair: sim 2 + the whole-article unit score.
  const double article_unit_score =
      Unwrap(ScoreNodeReference(db_.get(), db_->documents()[0].root,
                                *left.FindLabel(6)->ir(),
                                *left.FindLabel(6)->scorer()));
  EXPECT_NEAR(best, 2.0 + article_unit_score, 1e-9);
}

TEST_F(ReferenceEvalTest, ScoredJoinWithoutIrLabelUsesSimilarity) {
  ScoredPatternTree left;
  left.CreateRoot(1)->set_tag("article-title");
  ScoredPatternTree right;
  right.CreateRoot(2)->set_tag("title");
  ScoredJoinSpec spec;
  spec.left_sim_label = 1;
  spec.right_sim_label = 2;
  spec.min_similarity = 0.5;
  const auto trees = Unwrap(ScoredJoin(db_.get(), left, right, spec));
  // "Internet Technologies" matches both review titles (sim 2 and 1).
  ASSERT_EQ(trees.size(), 2u);
  EXPECT_DOUBLE_EQ(std::max(trees[0].Score(), trees[1].Score()), 2.0);
  EXPECT_DOUBLE_EQ(std::min(trees[0].Score(), trees[1].Score()), 1.0);
}

TEST_F(ReferenceEvalTest, ProjectionRequiresRootLabel) {
  const ScoredPatternTree pattern = Query2Pattern();
  EXPECT_TRUE(ScoredProjection(db_.get(), pattern, {4})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(ReferenceEvalTest, RenderScoredTreeMatchesFigureNotation) {
  const ScoredPatternTree pattern = Query2Pattern();
  const auto trees = Unwrap(ScoredProjection(db_.get(), pattern, {1, 4}));
  ASSERT_EQ(trees.size(), 1u);
  const std::string rendered =
      Unwrap(RenderScoredTree(db_.get(), trees[0]));
  // Root line: article[<score>] #<id>.
  EXPECT_EQ(rendered.rfind("article[", 0), 0u);
  EXPECT_NE(rendered.find("chapter["), std::string::npos);
  EXPECT_NE(rendered.find(" #"), std::string::npos);
  // Indentation grows with depth: a doubly indented line exists.
  EXPECT_NE(rendered.find("\n    "), std::string::npos);

  RenderOptions options;
  options.show_node_ids = false;
  const std::string no_ids =
      Unwrap(RenderScoredTree(db_.get(), trees[0], options));
  EXPECT_EQ(no_ids.find(" #"), std::string::npos);
}

TEST_F(ReferenceEvalTest, RenderVirtualProductRoot) {
  auto root = std::make_unique<ScoredTreeNode>(storage::kInvalidNodeId);
  root->set_score(2.8);
  const ScoredTree tree(std::move(root));
  const std::string rendered = Unwrap(RenderScoredTree(db_.get(), tree));
  EXPECT_EQ(rendered, "tix_prod_root[2.80]\n");
}

}  // namespace
}  // namespace tix::algebra
