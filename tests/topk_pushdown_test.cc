#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "algebra/scoring.h"
#include "algebra/threshold.h"
#include "exec/occurrence_stream.h"
#include "exec/parallel_term_join.h"
#include "exec/score_bound.h"
#include "exec/term_join.h"
#include "exec/threshold_operator.h"
#include "index/inverted_index.h"
#include "query/engine.h"
#include "tests/test_util.h"
#include "workload/corpus.h"
#include "workload/paper_example.h"

/// \file
/// Top-K threshold pushdown. The contract under test: with an eligible
/// threshold (top_k set, simple monotone scorer), TermJoin's
/// early-terminating mode and ParallelTermJoin's shared-floor mode both
/// return *exactly* the elements the materialize-then-threshold pipeline
/// keeps — same elements, same order, same scores — at every partition
/// count. Plus the building blocks: block-max skip metadata, the heap
/// floor, the dropped_by_heap accounting invariant, and arrival-order
/// independence of the tie-break.

namespace tix::exec {
namespace {

using testing::ExpectOk;
using testing::MakeTestDatabase;
using testing::TempDir;
using testing::Unwrap;

// ------------------------------------------------------------ scaffolding

struct Corpus {
  TempDir dir;
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<index::InvertedIndex> index;
};

std::unique_ptr<Corpus> MakeCorpus(uint64_t articles = 40,
                                   uint64_t seed = 42) {
  auto corpus = std::make_unique<Corpus>();
  corpus->db = MakeTestDatabase(corpus->dir.path());
  workload::CorpusOptions options;
  options.num_articles = articles;
  options.seed = seed;
  options.vocabulary_size = 400;
  options.planted_terms = {{"xq1", 9 * articles}, {"xq2", 4 * articles}};
  options.planted_phrases = {
      {"xpa", "xpb", 5 * articles, 4 * articles, 2 * articles}};
  Unwrap(workload::GenerateCorpus(corpus->db.get(), options));
  corpus->index = std::make_unique<index::InvertedIndex>(
      Unwrap(index::InvertedIndex::Build(corpus->db.get())));
  return corpus;
}

algebra::IrPredicate ThreePhrasePredicate() {
  algebra::IrPredicate predicate;
  predicate.phrases.push_back(algebra::WeightedPhrase{{"xq1"}, 0.8});
  predicate.phrases.push_back(algebra::WeightedPhrase{{"xq2"}, 0.6});
  predicate.phrases.push_back(algebra::WeightedPhrase{{"xpa", "xpb"}, 0.7});
  return predicate;
}

void ExpectIdentical(const std::vector<ScoredElement>& actual,
                     const std::vector<ScoredElement>& expected,
                     const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].node, expected[i].node) << label << " @" << i;
    EXPECT_EQ(actual[i].doc, expected[i].doc) << label << " @" << i;
    EXPECT_EQ(actual[i].start, expected[i].start) << label << " @" << i;
    EXPECT_EQ(actual[i].end, expected[i].end) << label << " @" << i;
    EXPECT_EQ(actual[i].counts, expected[i].counts) << label << " @" << i;
    // Exact equality: pushdown scores through the very same code path.
    EXPECT_EQ(actual[i].score, expected[i].score) << label << " @" << i;
  }
}

/// The reference pipeline: materialize the full join output, then feed
/// it through the post-pass ThresholdOperator.
std::vector<ScoredElement> MaterializeThenThreshold(
    Corpus& corpus, const algebra::IrPredicate& predicate,
    const algebra::Scorer& scorer, const algebra::ThresholdSpec& spec) {
  TermJoin full(corpus.db.get(), corpus.index.get(), &predicate, &scorer);
  std::vector<ScoredElement> all = Unwrap(full.Run());
  ThresholdOperator threshold(spec);
  for (ScoredElement& element : all) threshold.Push(std::move(element));
  return threshold.Finish();
}

// ---------------------------------------------------- block-max metadata

/// Hand-built list: doc 0 holds 140 postings, doc 1 holds 100, doc 2
/// holds 30 — 270 total, i.e. three skip blocks (interval 128) with doc 0
/// straddling the first boundary.
index::PostingList MakeThreeDocList() {
  index::PostingList list;
  const uint32_t counts[] = {140, 100, 30};
  uint32_t pos = 0;
  for (uint32_t doc = 0; doc < 3; ++doc) {
    for (uint32_t i = 0; i < counts[doc]; ++i) {
      list.postings.push_back(index::Posting{doc, doc * 1000 + i, pos});
      pos += 2;
    }
  }
  list.doc_frequency = 3;
  list.node_frequency = static_cast<uint32_t>(list.postings.size());
  return list;
}

TEST(BlockMaxTest, BuildSkipsComputesPerBlockDocMaxima) {
  index::PostingList list = MakeThreeDocList();
  list.BuildSkips();
  ASSERT_EQ(list.skips.size(), 3u);  // ceil(270 / 128)
  // Block 0 holds only doc 0 (count 140). Block 1 is touched by docs 0,
  // 1 and 2 — the maximum is doc 0's *total* count even though only 12
  // of its postings fall inside the block: a straddling document charges
  // its full count to every block it touches, otherwise the bound could
  // undercount an element whose occurrences span blocks. Block 2 holds
  // only doc 2's tail.
  EXPECT_EQ(list.skips[0].max_doc_count, 140u);
  EXPECT_EQ(list.skips[1].max_doc_count, 140u);
  EXPECT_EQ(list.skips[2].max_doc_count, 30u);
  EXPECT_EQ(list.max_doc_count, 140u);
}

TEST(BlockMaxTest, DocPostingCountIsExact) {
  index::PostingList list = MakeThreeDocList();
  // Works both with and without the doc-offset acceleration.
  for (const bool build : {false, true}) {
    if (build) list.BuildSkips();
    EXPECT_EQ(list.DocPostingCount(0), 140u) << build;
    EXPECT_EQ(list.DocPostingCount(1), 100u) << build;
    EXPECT_EQ(list.DocPostingCount(2), 30u) << build;
    EXPECT_EQ(list.DocPostingCount(3), 0u) << build;
    EXPECT_EQ(list.DocPostingCount(UINT32_MAX), 0u) << build;
  }
}

TEST(BlockMaxTest, BlockBoundWindows) {
  index::PostingList list = MakeThreeDocList();
  list.BuildSkips();
  // From doc 0: block 0's window. The next skip entry still starts at
  // doc 0 (the straddle), so the window is clamped to a single document
  // — it must always advance.
  const auto b0 = list.BlockBoundAt(0);
  EXPECT_EQ(b0.max_doc_count, 140u);
  EXPECT_EQ(b0.window_end, 1u);
  // From doc 2 the cursor lands in block 1; block 2 starts at doc 2 as
  // well, so again the clamp applies.
  const auto b2 = list.BlockBoundAt(2);
  EXPECT_EQ(b2.max_doc_count, 140u);
  EXPECT_EQ(b2.window_end, 3u);
  // Past the end: nothing left, bound zero forever.
  const auto past = list.BlockBoundAt(3);
  EXPECT_EQ(past.max_doc_count, 0u);
  EXPECT_EQ(past.window_end, UINT32_MAX);
}

TEST(BlockMaxTest, ListWithoutSkipsNeverPrunes) {
  index::PostingList list = MakeThreeDocList();  // BuildSkips not called
  const auto bound = list.BlockBoundAt(1);
  // Degraded bound: unknown ("infinite") count over a one-doc window —
  // valid for any list, useful for none.
  EXPECT_EQ(bound.max_doc_count, UINT32_MAX);
  EXPECT_EQ(bound.window_end, 2u);
}

TEST(BlockMaxTest, CorpusListsSatisfyTheBoundInvariant) {
  auto corpus = MakeCorpus(10);
  for (const char* term : {"xq1", "xq2", "xpa", "xpb"}) {
    const index::PostingList* list = corpus->index->Lookup(term);
    ASSERT_NE(list, nullptr) << term;
    ASSERT_FALSE(list->skips.empty()) << term;
    // Every document's exact count must be covered by the block bound of
    // every window containing it, and by the list-level bound.
    uint32_t best = 0;
    for (const auto& [doc, offset] : list->doc_offsets) {
      const uint32_t exact = list->DocPostingCount(doc);
      best = std::max(best, exact);
      storage::DocId probe = doc;
      const auto bound = list->BlockBoundAt(probe);
      EXPECT_GE(bound.max_doc_count, exact) << term << " doc " << doc;
      EXPECT_GT(bound.window_end, probe) << term << " doc " << doc;
    }
    EXPECT_EQ(list->max_doc_count, best) << term;
  }
}

// ------------------------------------------------------ ScoreBoundOracle

TEST(ScoreBoundOracleTest, DocBoundsDominateEveryElementScore) {
  auto corpus = MakeCorpus(12);
  const algebra::IrPredicate predicate = ThreePhrasePredicate();
  const algebra::WeightedCountScorer scorer(predicate.Weights());
  ScoreBoundOracle oracle(*corpus->index, predicate);
  ASSERT_EQ(oracle.num_phrases(), predicate.phrases.size());

  TermJoin join(corpus->db.get(), corpus->index.get(), &predicate, &scorer);
  const std::vector<ScoredElement> all = Unwrap(join.Run());
  ASSERT_FALSE(all.empty());
  std::vector<uint32_t> counts;
  for (const ScoredElement& element : all) {
    oracle.DocBoundCounts(element.doc, &counts);
    const double bound = scorer.Score(counts);
    EXPECT_GE(bound, element.score) << "doc " << element.doc;
    // And the window bound dominates the exact doc bound.
    storage::DocId window_end = 0;
    std::vector<uint32_t> window_counts;
    oracle.WindowBoundCounts(element.doc, &window_counts, &window_end);
    EXPECT_GT(window_end, element.doc);
    EXPECT_GE(scorer.Score(window_counts), bound) << "doc " << element.doc;
  }
}

TEST(ScoreBoundOracleTest, AbsentTermsBoundPhraseAtZero) {
  auto corpus = MakeCorpus(4);
  algebra::IrPredicate predicate;
  predicate.phrases.push_back(
      algebra::WeightedPhrase{{"xq1", "zz_never_occurs"}, 1.0});
  ScoreBoundOracle oracle(*corpus->index, predicate);
  std::vector<uint32_t> counts;
  oracle.DocBoundCounts(0, &counts);
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0], 0u);
  storage::DocId window_end = 0;
  oracle.WindowBoundCounts(0, &counts, &window_end);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_GT(window_end, 0u);
}

TEST(TopKFloorTest, RaiseIsMonotone) {
  TopKFloor floor;
  EXPECT_EQ(floor.Load(), -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(floor.Raise(1.5));
  EXPECT_EQ(floor.Load(), 1.5);
  EXPECT_FALSE(floor.Raise(1.0));  // lower: no-op
  EXPECT_FALSE(floor.Raise(1.5));  // equal: no-op
  EXPECT_EQ(floor.Load(), 1.5);
  EXPECT_TRUE(floor.Raise(2.0));
  EXPECT_EQ(floor.Load(), 2.0);
}

// ------------------------------------------------- ThresholdOperator

ScoredElement Element(storage::DocId doc, uint32_t start, uint32_t end,
                      storage::NodeId node, double score) {
  ScoredElement element;
  element.doc = doc;
  element.start = start;
  element.end = end;
  element.node = node;
  element.score = score;
  return element;
}

TEST(ThresholdOperatorTest, AccountingInvariantHolds) {
  algebra::ThresholdSpec spec;
  spec.min_score = 0.5;
  spec.top_k = 3;
  ThresholdOperator op(spec);
  for (uint32_t i = 0; i < 20; ++i) {
    op.Push(Element(i, i, i + 1, i, 0.1 * i));
    // pushed == kept + dropped_by_score + dropped_by_heap, at all times.
    EXPECT_EQ(op.pushed(),
              op.kept() + op.dropped_by_score() + op.dropped_by_heap())
        << "after push " << i;
  }
  EXPECT_EQ(op.pushed(), 20u);
  EXPECT_EQ(op.dropped_by_score(), 6u);  // scores 0.0 .. 0.5 fail > 0.5
  EXPECT_EQ(op.kept(), 3u);
  EXPECT_EQ(op.dropped_by_heap(), 11u);
  EXPECT_EQ(op.Finish().size(), 3u);
}

TEST(ThresholdOperatorTest, TopKZeroDropsEverything) {
  algebra::ThresholdSpec spec;
  spec.top_k = 0;
  ThresholdOperator op(spec);
  ASSERT_TRUE(op.HeapFloor().has_value());
  EXPECT_EQ(*op.HeapFloor(), std::numeric_limits<double>::infinity());
  for (uint32_t i = 0; i < 5; ++i) op.Push(Element(i, 0, 1, i, 1.0));
  EXPECT_EQ(op.pushed(), 5u);
  EXPECT_EQ(op.dropped_by_heap(), 5u);
  EXPECT_EQ(op.kept(), 0u);
  EXPECT_TRUE(op.Finish().empty());
}

TEST(ThresholdOperatorTest, HeapFloorTracksKthBestScore) {
  algebra::ThresholdSpec spec;
  spec.top_k = 2;
  ThresholdOperator op(spec);
  EXPECT_FALSE(op.HeapFloor().has_value());  // heap not full yet
  op.Push(Element(0, 0, 1, 0, 3.0));
  EXPECT_FALSE(op.HeapFloor().has_value());
  op.Push(Element(1, 0, 1, 1, 1.0));
  ASSERT_TRUE(op.HeapFloor().has_value());
  EXPECT_EQ(*op.HeapFloor(), 1.0);
  op.Push(Element(2, 0, 1, 2, 2.0));  // evicts the 1.0
  EXPECT_EQ(*op.HeapFloor(), 2.0);
  op.Push(Element(3, 0, 1, 3, 0.5));  // rejected, floor unchanged
  EXPECT_EQ(*op.HeapFloor(), 2.0);
  // min_score without top_k: no heap, no floor.
  algebra::ThresholdSpec v_only;
  v_only.min_score = 0.5;
  EXPECT_FALSE(ThresholdOperator(v_only).HeapFloor().has_value());
}

// Satellite regression: with more than k elements tied on score, the
// survivors are the first k in document order — for *every* arrival
// order. (HeapLess falls back to DocumentOrderLess, which is a total
// order even for synthetic elements sharing (doc, start).)
TEST(ThresholdOperatorTest, TiedScoresKeepDocumentOrderWinners) {
  constexpr size_t kTopK = 4;
  std::vector<ScoredElement> tied;
  for (uint32_t doc = 0; doc < 4; ++doc) {
    tied.push_back(Element(doc, 10, 90, 100 + doc, 1.0));
    // Same (doc, start) as above, smaller interval: document order is
    // decided by the (end DESC, node) tail of the comparison.
    tied.push_back(Element(doc, 10, 40, 200 + doc, 1.0));
    tied.push_back(Element(doc, 50, 60, 300 + doc, 1.0));
  }
  std::vector<ScoredElement> expected = tied;
  std::sort(expected.begin(), expected.end(), DocumentOrderLess);
  expected.resize(kTopK);

  std::vector<ScoredElement> order = tied;
  std::mt19937 rng(1234);
  for (int permutation = 0; permutation < 8; ++permutation) {
    algebra::ThresholdSpec spec;
    spec.top_k = kTopK;
    ThresholdOperator op(spec);
    for (const ScoredElement& element : order) op.Push(element);
    ExpectIdentical(op.Finish(), expected,
                    "permutation " + std::to_string(permutation));
    if (permutation == 0) {
      std::reverse(order.begin(), order.end());
    } else {
      std::shuffle(order.begin(), order.end(), rng);
    }
  }
}

// ------------------------------------------------------- stream seeking

TEST(SkipToDocTest, TermStreamLeapsAndCountsBypassedPostings) {
  index::PostingList list = MakeThreeDocList();
  list.BuildSkips();
  TermOccurrenceStream stream(&list);
  EXPECT_EQ(stream.SkipToDoc(0), 0u);  // already there
  EXPECT_EQ(stream.SkipToDoc(2), 240u);  // doc 0 (140) + doc 1 (100)
  ASSERT_TRUE(stream.Peek().has_value());
  EXPECT_EQ(stream.Peek()->doc, 2u);
  EXPECT_EQ(stream.SkipToDoc(1), 0u);  // never moves backwards
  EXPECT_EQ(stream.Peek()->doc, 2u);
  EXPECT_EQ(stream.SkipToDoc(99), 30u);  // drains the tail
  EXPECT_FALSE(stream.Peek().has_value());
}

TEST(SkipToDocTest, PhraseStreamSkipsToMatchingDoc) {
  auto corpus = MakeCorpus(10);
  algebra::IrPredicate predicate;
  predicate.phrases.push_back(algebra::WeightedPhrase{{"xpa", "xpb"}, 1.0});
  auto streams = MakeOccurrenceStreams(*corpus->index, predicate);
  ASSERT_EQ(streams.size(), 1u);
  OccurrenceStream& stream = *streams[0];
  ASSERT_TRUE(stream.Peek().has_value());
  // Collect the reference occurrence list, then re-open and skip.
  auto reference = MakeOccurrenceStreams(*corpus->index, predicate);
  std::vector<Occurrence> all = reference[0]->DrainAll();
  ASSERT_FALSE(all.empty());
  const storage::DocId target = all.back().doc;
  stream.SkipToDoc(target);
  ASSERT_TRUE(stream.Peek().has_value());
  EXPECT_EQ(stream.Peek()->doc, target);
  EXPECT_EQ(stream.Peek()->word_pos,
            std::find_if(all.begin(), all.end(),
                         [&](const Occurrence& occurrence) {
                           return occurrence.doc == target;
                         })
                ->word_pos);
}

// ------------------------------------------- serial pushdown equivalence

TEST(TermJoinPushdownTest, EligibilityRule) {
  const algebra::IrPredicate predicate = ThreePhrasePredicate();
  const algebra::WeightedCountScorer simple(predicate.Weights());
  const algebra::ComplexProximityScorer complex(predicate.Weights());
  TermJoinOptions options;
  EXPECT_FALSE(TermJoinCanPushThreshold(options, simple));  // no spec
  options.threshold = algebra::ThresholdSpec{};
  options.threshold->min_score = 0.5;  // V-only: no heap to push
  EXPECT_FALSE(TermJoinCanPushThreshold(options, simple));
  options.threshold->top_k = 5;
  EXPECT_TRUE(TermJoinCanPushThreshold(options, simple));
  EXPECT_FALSE(TermJoinCanPushThreshold(options, complex));
  const algebra::WeightedCountScorer negative({-1.0, 0.5});
  EXPECT_FALSE(TermJoinCanPushThreshold(options, negative));  // non-monotone
}

TEST(TermJoinPushdownTest, MatchesMaterializeThenThreshold) {
  auto corpus = MakeCorpus(40);
  const algebra::IrPredicate predicate = ThreePhrasePredicate();
  const algebra::WeightedCountScorer scorer(predicate.Weights());
  for (const size_t top_k : {1u, 3u, 10u, 1000000000u}) {
    algebra::ThresholdSpec spec;
    spec.top_k = top_k;
    const std::vector<ScoredElement> expected =
        MaterializeThenThreshold(*corpus, predicate, scorer, spec);
    TermJoinOptions options;
    options.threshold = spec;
    TermJoin pushdown(corpus->db.get(), corpus->index.get(), &predicate,
                      &scorer, options);
    ExpectIdentical(Unwrap(pushdown.Run()), expected,
                    "k=" + std::to_string(top_k));
  }
}

TEST(TermJoinPushdownTest, MinScorePlusTopK) {
  auto corpus = MakeCorpus(20);
  const algebra::IrPredicate predicate = ThreePhrasePredicate();
  const algebra::WeightedCountScorer scorer(predicate.Weights());
  algebra::ThresholdSpec spec;
  spec.top_k = 5;
  spec.min_score = 2.0;
  const std::vector<ScoredElement> expected =
      MaterializeThenThreshold(*corpus, predicate, scorer, spec);
  TermJoinOptions options;
  options.threshold = spec;
  TermJoin pushdown(corpus->db.get(), corpus->index.get(), &predicate,
                    &scorer, options);
  ExpectIdentical(Unwrap(pushdown.Run()), expected, "v-and-k");
}

TEST(TermJoinPushdownTest, ActuallyPrunesWork) {
  auto corpus = MakeCorpus(40);
  const algebra::IrPredicate predicate = ThreePhrasePredicate();
  const algebra::WeightedCountScorer scorer(predicate.Weights());
  algebra::ThresholdSpec spec;
  spec.top_k = 1;
  TermJoinOptions options;
  options.threshold = spec;
  TermJoin pushdown(corpus->db.get(), corpus->index.get(), &predicate,
                    &scorer, options);
  ASSERT_EQ(Unwrap(pushdown.Run()).size(), 1u);
  const TermJoinStats& stats = pushdown.stats();
  // With k=1 over 40 documents of varying score, most documents cannot
  // beat the running best and must be skipped without being merged.
  EXPECT_GT(stats.docs_pruned, 0u);
  EXPECT_GT(stats.postings_pruned, 0u);
  EXPECT_GT(stats.floor_updates, 0u);

  TermJoin full(corpus->db.get(), corpus->index.get(), &predicate, &scorer);
  (void)Unwrap(full.Run());
  // Pruned postings are postings the full merge consumed but the
  // pushdown run never touched.
  EXPECT_LT(stats.occurrences, full.stats().occurrences);
}

TEST(TermJoinPushdownTest, IneligibleSpecsLeaveOutputUntouched) {
  auto corpus = MakeCorpus(10);
  const algebra::IrPredicate predicate = ThreePhrasePredicate();
  const algebra::WeightedCountScorer simple(predicate.Weights());
  const algebra::ComplexProximityScorer complex(predicate.Weights());
  TermJoin reference_simple(corpus->db.get(), corpus->index.get(), &predicate,
                            &simple);
  const auto expected_simple = Unwrap(reference_simple.Run());
  TermJoin reference_complex(corpus->db.get(), corpus->index.get(),
                             &predicate, &complex);
  const auto expected_complex = Unwrap(reference_complex.Run());

  // V-only threshold: ignored by the join (the planner's post-pass
  // applies it), full output in document order.
  TermJoinOptions v_only;
  v_only.threshold = algebra::ThresholdSpec{};
  v_only.threshold->min_score = 0.5;
  TermJoin v_join(corpus->db.get(), corpus->index.get(), &predicate, &simple,
                  v_only);
  ExpectIdentical(Unwrap(v_join.Run()), expected_simple, "v-only");
  EXPECT_EQ(v_join.stats().docs_pruned, 0u);
  EXPECT_EQ(v_join.stats().postings_pruned, 0u);

  // Complex scorer: bounds from per-doc counts do not dominate nested
  // proximity scores, so pushdown must stay off.
  TermJoinOptions with_k;
  with_k.threshold = algebra::ThresholdSpec{};
  with_k.threshold->top_k = 3;
  TermJoin complex_join(corpus->db.get(), corpus->index.get(), &predicate,
                        &complex, with_k);
  ExpectIdentical(Unwrap(complex_join.Run()), expected_complex, "complex");
  EXPECT_EQ(complex_join.stats().docs_pruned, 0u);
}

// ------------------------------------- parallel pushdown property sweep

// Satellite property test: over seeded random corpora, for every top_k
// and partition count, the pushdown path reproduces the reference
// pipeline element for element. Runs under TSan via
// scripts/check_sanitizers.sh — the partitions race on the shared floor.
TEST(ParallelPushdownPropertyTest, TwentySeededCorpora) {
  constexpr size_t kInfinity = 1000000000;  // "no K bound in practice"
  for (uint64_t seed = 0; seed < 20; ++seed) {
    auto corpus = MakeCorpus(/*articles=*/10, /*seed=*/1000 + seed * 17);
    const algebra::IrPredicate predicate = ThreePhrasePredicate();
    const algebra::WeightedCountScorer scorer(predicate.Weights());
    for (const size_t top_k : {size_t{1}, size_t{3}, size_t{10}, kInfinity}) {
      algebra::ThresholdSpec spec;
      spec.top_k = top_k;
      const std::vector<ScoredElement> expected =
          MaterializeThenThreshold(*corpus, predicate, scorer, spec);
      const std::string label = "seed=" + std::to_string(seed) +
                                "/k=" + std::to_string(top_k);

      TermJoinOptions serial_options;
      serial_options.threshold = spec;
      TermJoin serial(corpus->db.get(), corpus->index.get(), &predicate,
                      &scorer, serial_options);
      ExpectIdentical(Unwrap(serial.Run()), expected, label + "/serial");

      for (const size_t partitions : {1u, 2u, 4u, 8u}) {
        ParallelTermJoinOptions options;
        options.join.threshold = spec;
        options.num_partitions = partitions;
        options.num_threads = 4;
        ParallelTermJoin parallel(corpus->db.get(), corpus->index.get(),
                                  &predicate, &scorer, options);
        ExpectIdentical(Unwrap(parallel.Run()), expected,
                        label + "/p" + std::to_string(partitions));
      }
    }
  }
}

// --------------------------------------------- engine-level equivalence

class EnginePushdownTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTestDatabase(dir_.path());
    ExpectOk(workload::LoadPaperExample(db_.get()));
    index_ = std::make_unique<index::InvertedIndex>(
        Unwrap(index::InvertedIndex::Build(db_.get())));
  }

  query::QueryOutput Run(std::string_view text, bool pushdown) {
    query::EngineOptions options;
    options.threshold_pushdown = pushdown;
    query::QueryEngine engine(db_.get(), index_.get(), options);
    return Unwrap(engine.ExecuteText(text));
  }

  void ExpectSameResults(std::string_view text) {
    const query::QueryOutput on = Run(text, true);
    const query::QueryOutput off = Run(text, false);
    ASSERT_EQ(on.results.size(), off.results.size()) << text;
    for (size_t i = 0; i < off.results.size(); ++i) {
      EXPECT_EQ(on.results[i].node, off.results[i].node) << text << " @" << i;
      EXPECT_EQ(on.results[i].score, off.results[i].score)
          << text << " @" << i;
    }
    EXPECT_EQ(on.stats.returned, off.stats.returned) << text;
  }

  TempDir dir_;
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<index::InvertedIndex> index_;
};

TEST_F(EnginePushdownTest, ResultsIdenticalWithAndWithoutPushdown) {
  // Eligible: simple scorer, bare //* target (anchor = document root),
  // STOP AFTER.
  ExpectSameResults(R"(
      FOR $a IN document("articles.xml")//*
      SCORE $a USING foo({"search engine"},
                         {"internet", "information retrieval"})
      THRESHOLD STOP AFTER 3
      RETURN $a)");
  // Eligible, V and K combined.
  ExpectSameResults(R"(
      FOR $a IN document("articles.xml")//*
      SCORE $a USING foo({"search engine"}, {"internet"})
      THRESHOLD score > 0.5 STOP AFTER 2
      RETURN $a)");
  // Anchored path: Scope filters to the article subtree after scoring,
  // so the engine must fall back — and still agree.
  ExpectSameResults(R"(
      FOR $a IN document("articles.xml")//article//*
      SCORE $a USING foo({"search engine"},
                         {"internet", "information retrieval"})
      THRESHOLD STOP AFTER 3
      RETURN $a)");
  // Fallback paths must be byte-compatible too: complex scorer...
  ExpectSameResults(R"(
      FOR $a IN document("articles.xml")//article//*
      SCORE $a USING complexfoo({"search engine"}, {"internet"})
      THRESHOLD STOP AFTER 5
      RETURN $a)");
  // ...Pick between TermJoin and Threshold...
  ExpectSameResults(R"(
      FOR $a IN document("articles.xml")//article//*
      SCORE $a USING foo({"search engine"},
                         {"internet", "information retrieval"})
      PICK $a USING pickfoo(0.8, 0.5)
      THRESHOLD STOP AFTER 2
      RETURN $a)");
  // ...named target (Scope filters after scoring)...
  ExpectSameResults(R"(
      FOR $p IN document("articles.xml")//article//p
      SCORE $p USING foo({"search engine"})
      THRESHOLD STOP AFTER 2
      RETURN $p)");
  // ...and V-only thresholds.
  ExpectSameResults(R"(
      FOR $a IN document("articles.xml")//article//*
      SCORE $a USING foo({"search engine"})
      THRESHOLD score > 0.2
      RETURN $a)");
}

TEST_F(EnginePushdownTest, ExplainShowsPushdownAndPruneCounters) {
  query::EngineOptions options;
  options.collect_metrics = true;
  query::QueryEngine engine(db_.get(), index_.get(), options);
  const query::QueryOutput output = Unwrap(engine.ExecuteText(R"(
      FOR $a IN document("articles.xml")//*
      SCORE $a USING foo({"search engine"}, {"internet"})
      THRESHOLD STOP AFTER 1
      RETURN $a)"));
  ASSERT_TRUE(output.plan.has_value());
  const std::string rendered = obs::RenderText(*output.plan);
  EXPECT_NE(rendered.find("topk-pushdown(k=1)"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("pushed down"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("dropped_by_heap"), std::string::npos) << rendered;
}

}  // namespace
}  // namespace tix::exec
