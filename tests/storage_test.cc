#include <algorithm>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/database.h"
#include "storage/file_manager.h"
#include "storage/node_record.h"
#include "tests/test_util.h"
#include "workload/paper_example.h"
#include "xml/parser.h"

namespace tix::storage {
namespace {

using testing::ExpectOk;
using testing::MakeTestDatabase;
using testing::TempDir;
using testing::Unwrap;

// ------------------------------------------------------------ PagedFile

TEST(PagedFileTest, CreateWriteReadBack) {
  TempDir dir;
  auto file = Unwrap(PagedFile::Create(dir.path() + "/f.tix"));
  char page[kPageSize];
  std::fill_n(page, kPageSize, 'x');
  ExpectOk(file->WritePage(3, page));
  EXPECT_EQ(file->page_count(), 4u);

  char read[kPageSize];
  ExpectOk(file->ReadPage(3, read));
  EXPECT_EQ(read[0], 'x');
  EXPECT_EQ(read[kPageSize - 1], 'x');
  // Unwritten page within file reads as zeros.
  ExpectOk(file->ReadPage(1, read));
  EXPECT_EQ(read[0], 0);
  // Beyond-end page reads as zeros too.
  ExpectOk(file->ReadPage(100, read));
  EXPECT_EQ(read[0], 0);
}

TEST(PagedFileTest, TruncatedTailPageIsCorruptionNotZeros) {
  TempDir dir;
  const std::string path = dir.path() + "/f.tix";
  {
    auto file = Unwrap(PagedFile::Create(path));
    char page[kPageSize];
    std::fill_n(page, kPageSize, 'y');
    ExpectOk(file->WritePage(0, page));
    ExpectOk(file->WritePage(1, page));
    ExpectOk(file->Sync());
  }
  // Chop the second frame in half — a crash mid-write or an external
  // truncation. The short page must surface as Corruption; silently
  // zero-filling it would hand the caller fabricated records.
  std::filesystem::resize_file(
      path, kFileHeaderSize + kPageFrameSize + kPageFrameSize / 2);
  auto file = Unwrap(PagedFile::Open(path));
  EXPECT_EQ(file->page_count(), 1u);
  char read[kPageSize];
  ExpectOk(file->ReadPage(0, read));
  EXPECT_EQ(read[0], 'y');
  const Status status = file->ReadPage(1, read);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  // Pages past the damage still follow fresh-page semantics.
  ExpectOk(file->ReadPage(5, read));
  EXPECT_EQ(read[0], 0);
}

TEST(PagedFileTest, ReopenSeesData) {
  TempDir dir;
  const std::string path = dir.path() + "/f.tix";
  {
    auto file = Unwrap(PagedFile::Create(path));
    char page[kPageSize] = {};
    page[0] = 42;
    ExpectOk(file->WritePage(0, page));
    ExpectOk(file->Sync());
  }
  auto file = Unwrap(PagedFile::Open(path));
  EXPECT_EQ(file->page_count(), 1u);
  char read[kPageSize];
  ExpectOk(file->ReadPage(0, read));
  EXPECT_EQ(read[0], 42);
}

TEST(PagedFileTest, OpenMissingFileFails) {
  EXPECT_FALSE(PagedFile::Open("/nonexistent/nowhere.tix").ok());
}

// ----------------------------------------------------------- BufferPool

TEST(BufferPoolTest, HitsAndMisses) {
  TempDir dir;
  // The file must outlive the pool (the pool flushes on destruction).
  auto file = Unwrap(PagedFile::Create(dir.path() + "/f.tix"));
  BufferPool pool(4);
  {
    PageHandle handle = Unwrap(pool.Fetch(file.get(), 0));
    handle.MutableData()[0] = 7;
  }
  EXPECT_EQ(pool.stats().misses, 1u);
  {
    PageHandle handle = Unwrap(pool.Fetch(file.get(), 0));
    EXPECT_EQ(handle.data()[0], 7);
  }
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  TempDir dir;
  auto file = Unwrap(PagedFile::Create(dir.path() + "/f.tix"));
  BufferPool pool(2);
  for (PageNumber p = 0; p < 8; ++p) {
    PageHandle handle = Unwrap(pool.Fetch(file.get(), p));
    handle.MutableData()[0] = static_cast<char>('a' + p);
  }
  EXPECT_GE(pool.stats().evictions, 6u);
  // All pages readable with their written contents.
  for (PageNumber p = 0; p < 8; ++p) {
    PageHandle handle = Unwrap(pool.Fetch(file.get(), p));
    EXPECT_EQ(handle.data()[0], static_cast<char>('a' + p)) << p;
  }
}

TEST(BufferPoolTest, AllPinnedIsResourceExhausted) {
  TempDir dir;
  auto file = Unwrap(PagedFile::Create(dir.path() + "/f.tix"));
  BufferPool pool(2);
  PageHandle h0 = Unwrap(pool.Fetch(file.get(), 0));
  PageHandle h1 = Unwrap(pool.Fetch(file.get(), 1));
  const auto result = pool.Fetch(file.get(), 2);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(BufferPoolTest, LruEvictsColdestPage) {
  TempDir dir;
  auto file = Unwrap(PagedFile::Create(dir.path() + "/f.tix"));
  BufferPool pool(2);
  { PageHandle h = Unwrap(pool.Fetch(file.get(), 0)); }
  { PageHandle h = Unwrap(pool.Fetch(file.get(), 1)); }
  { PageHandle h = Unwrap(pool.Fetch(file.get(), 0)); }  // touch 0
  { PageHandle h = Unwrap(pool.Fetch(file.get(), 2)); }  // evicts 1
  pool.ResetStats();
  { PageHandle h = Unwrap(pool.Fetch(file.get(), 0)); }
  EXPECT_EQ(pool.stats().hits, 1u);  // 0 stayed resident
  { PageHandle h = Unwrap(pool.Fetch(file.get(), 1)); }
  EXPECT_EQ(pool.stats().misses, 1u);  // 1 was the victim
}

TEST(BufferPoolTest, EvictFileRefusesPinnedPages) {
  TempDir dir;
  auto file = Unwrap(PagedFile::Create(dir.path() + "/f.tix"));
  BufferPool pool(4);
  PageHandle pinned = Unwrap(pool.Fetch(file.get(), 0));
  EXPECT_FALSE(pool.EvictFile(file.get()).ok());
  pinned.Release();
  ExpectOk(pool.EvictFile(file.get()));
  // Idempotent on an absent file.
  ExpectOk(pool.EvictFile(file.get()));
}

TEST(BufferPoolTest, HandleMoveTransfersPin) {
  TempDir dir;
  auto file = Unwrap(PagedFile::Create(dir.path() + "/f.tix"));
  BufferPool pool(2);
  PageHandle a = Unwrap(pool.Fetch(file.get(), 0));
  PageHandle b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.valid());
  b.Release();
  EXPECT_FALSE(b.valid());
  b.Release();  // idempotent
}

// ------------------------------------------------------------ TextStore

TEST(TextStoreTest, BlobsSpanPageBoundaries) {
  TempDir dir;
  auto file = Unwrap(PagedFile::Create(dir.path() + "/t.tix"));
  BufferPool pool(4);
  TextStore store(&pool, std::move(file));
  // A blob larger than two pages.
  std::string big(2 * kPageSize + 123, 'q');
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + (i % 26));
  }
  const uint64_t first = Unwrap(store.Append("hello"));
  const uint64_t second = Unwrap(store.Append(big));
  const uint64_t third = Unwrap(store.Append("world"));
  EXPECT_EQ(Unwrap(store.Read(first, 5)), "hello");
  EXPECT_EQ(Unwrap(store.Read(second, static_cast<uint32_t>(big.size()))),
            big);
  EXPECT_EQ(Unwrap(store.Read(third, 5)), "world");
  EXPECT_TRUE(store.Read(third, 100).status().IsOutOfRange());
}

// ------------------------------------------------------------ NodeStore

TEST(NodeStoreTest, AppendGetUpdate) {
  TempDir dir;
  auto file = Unwrap(PagedFile::Create(dir.path() + "/n.tix"));
  BufferPool pool(4);
  NodeStore store(&pool, std::move(file));
  // Fill several pages worth of records.
  const size_t count = kRecordsPerPage * 3 + 7;
  for (size_t i = 0; i < count; ++i) {
    NodeRecord record;
    record.start = static_cast<uint32_t>(i * 2);
    record.end = static_cast<uint32_t>(i * 2 + 1);
    EXPECT_EQ(Unwrap(store.Append(record)), i);
  }
  EXPECT_EQ(store.num_nodes(), count);
  NodeRecord fetched = Unwrap(store.Get(kRecordsPerPage + 5));
  EXPECT_EQ(fetched.start, (kRecordsPerPage + 5) * 2);
  fetched.num_children = 42;
  ExpectOk(store.Update(kRecordsPerPage + 5, fetched));
  EXPECT_EQ(Unwrap(store.Get(kRecordsPerPage + 5)).num_children, 42u);
  EXPECT_TRUE(store.Get(static_cast<NodeId>(count)).status().IsOutOfRange());
  EXPECT_GT(store.record_fetches(), 0u);
  store.ResetCounters();
  EXPECT_EQ(store.record_fetches(), 0u);
}

// ----------------------------------------------------------- NodeRecord

TEST(NodeRecordTest, EncodeDecodeRoundTrip) {
  NodeRecord record;
  record.kind = NodeKind::kText;
  record.level = 9;
  record.doc_id = 3;
  record.tag_id = 77;
  record.start = 1000;
  record.end = 1010;
  record.parent = 5;
  record.first_child = kInvalidNodeId;
  record.next_sibling = 12;
  record.num_children = 0;
  record.blob_offset = (1ull << 40) + 3;
  record.blob_length = 512;
  record.num_words = 10;

  char buffer[kNodeRecordSize];
  EncodeNodeRecord(record, buffer);
  const NodeRecord decoded = DecodeNodeRecord(buffer);
  EXPECT_EQ(decoded.kind, record.kind);
  EXPECT_EQ(decoded.level, record.level);
  EXPECT_EQ(decoded.doc_id, record.doc_id);
  EXPECT_EQ(decoded.tag_id, record.tag_id);
  EXPECT_EQ(decoded.start, record.start);
  EXPECT_EQ(decoded.end, record.end);
  EXPECT_EQ(decoded.parent, record.parent);
  EXPECT_EQ(decoded.first_child, record.first_child);
  EXPECT_EQ(decoded.next_sibling, record.next_sibling);
  EXPECT_EQ(decoded.num_children, record.num_children);
  EXPECT_EQ(decoded.blob_offset, record.blob_offset);
  EXPECT_EQ(decoded.blob_length, record.blob_length);
  EXPECT_EQ(decoded.num_words, record.num_words);
}

TEST(NodeRecordTest, ContainmentSemantics) {
  NodeRecord outer;
  outer.doc_id = 1;
  outer.start = 0;
  outer.end = 100;
  NodeRecord inner;
  inner.doc_id = 1;
  inner.start = 10;
  inner.end = 20;
  EXPECT_TRUE(outer.Contains(inner));
  EXPECT_FALSE(inner.Contains(outer));
  EXPECT_FALSE(outer.Contains(outer));
  EXPECT_TRUE(outer.ContainsOrSelf(outer));
  inner.doc_id = 2;
  EXPECT_FALSE(outer.Contains(inner));
}

// ------------------------------------------------------------- Database

TEST(DatabaseTest, LoadPaperExampleStructure) {
  TempDir dir;
  auto db = MakeTestDatabase(dir.path());
  ExpectOk(workload::LoadPaperExample(db.get()));
  ASSERT_EQ(db->documents().size(), 2u);
  EXPECT_EQ(db->documents()[0].name, "articles.xml");
  EXPECT_GT(db->num_nodes(), 20u);

  // Root of document 0 is an <article> element at level 0.
  const NodeRecord root = Unwrap(db->GetNode(db->documents()[0].root));
  EXPECT_TRUE(root.is_element());
  EXPECT_EQ(db->TagName(root.tag_id), "article");
  EXPECT_EQ(root.level, 0);
  EXPECT_EQ(root.parent, kInvalidNodeId);
}

TEST(DatabaseTest, IntervalEncodingIsConsistent) {
  TempDir dir;
  auto db = MakeTestDatabase(dir.path());
  ExpectOk(workload::LoadPaperExample(db.get()));
  // Every child interval nests strictly inside its parent's interval,
  // and siblings are disjoint and ordered.
  for (NodeId id = 0; id < db->num_nodes(); ++id) {
    const NodeRecord record = Unwrap(db->GetNode(id));
    EXPECT_LT(record.start, record.end + 1) << id;
    if (record.parent != kInvalidNodeId) {
      const NodeRecord parent = Unwrap(db->GetNode(record.parent));
      EXPECT_TRUE(parent.ContainsOrSelf(record)) << id;
      EXPECT_GT(record.start, parent.start) << id;
      EXPECT_EQ(record.level, parent.level + 1) << id;
    }
    if (record.next_sibling != kInvalidNodeId) {
      const NodeRecord sibling = Unwrap(db->GetNode(record.next_sibling));
      EXPECT_GT(sibling.start, record.end) << id;
      EXPECT_EQ(sibling.parent, record.parent) << id;
    }
  }
}

TEST(DatabaseTest, NavigationMatchesIndex) {
  TempDir dir;
  auto db = MakeTestDatabase(dir.path());
  ExpectOk(workload::LoadPaperExample(db.get()));
  for (NodeId id = 0; id < db->num_nodes(); ++id) {
    const NodeRecord record = Unwrap(db->GetNode(id));
    EXPECT_EQ(db->ParentFromIndex(id), record.parent);
    EXPECT_EQ(db->ChildCountFromIndex(id), record.num_children);
    EXPECT_EQ(db->LevelFromIndex(id), record.level);
    EXPECT_EQ(Unwrap(db->CountChildrenByNavigation(id)), record.num_children);
    EXPECT_EQ(Unwrap(db->ChildrenOf(id)).size(), record.num_children);
  }
}

TEST(DatabaseTest, AncestorsChain) {
  TempDir dir;
  auto db = MakeTestDatabase(dir.path());
  ExpectOk(workload::LoadPaperExample(db.get()));
  // Find a <p> and verify its chain ends at the article root.
  const TagId p_tag = db->LookupTag("p");
  ASSERT_NE(p_tag, text::kInvalidTermId);
  const auto* paragraphs = db->ElementsWithTag(p_tag);
  ASSERT_NE(paragraphs, nullptr);
  const auto chain = Unwrap(db->AncestorsOf(paragraphs->front()));
  ASSERT_FALSE(chain.empty());
  EXPECT_EQ(chain.back(), db->documents()[0].root);
  // Chain levels strictly decrease.
  for (size_t i = 1; i < chain.size(); ++i) {
    EXPECT_LT(db->LevelFromIndex(chain[i]), db->LevelFromIndex(chain[i - 1]));
  }
}

TEST(DatabaseTest, TextAndAttributes) {
  TempDir dir;
  auto db = MakeTestDatabase(dir.path());
  ExpectOk(workload::LoadPaperExample(db.get()));
  // <author id="first"> carries its attribute.
  const TagId author_tag = db->LookupTag("author");
  const auto* authors = db->ElementsWithTag(author_tag);
  ASSERT_NE(authors, nullptr);
  const NodeRecord author = Unwrap(db->GetNode(authors->front()));
  const AttributeList attrs = Unwrap(db->AttributesOf(author));
  ASSERT_EQ(attrs.size(), 1u);
  EXPECT_EQ(attrs[0].name, "id");
  EXPECT_EQ(attrs[0].value, "first");
  // alltext of the author subtree.
  EXPECT_EQ(Unwrap(db->AllTextOf(authors->front())), "Jane Doe");
}

TEST(DatabaseTest, NumWordsCountsStopwordTails) {
  TempDir dir;
  DatabaseOptions options;
  options.buffer_pool_pages = 64;
  options.tokenizer.remove_stopwords = true;
  auto db = Unwrap(Database::Create(dir.path(), options));
  const auto document = Unwrap(xml::ParseXml(
      "<doc><p>search engine of the and</p><q>of the and</q></doc>",
      "stops.xml"));
  Unwrap(db->AddDocument(document));

  std::vector<NodeRecord> text_nodes;
  for (NodeId id = 0; id < db->num_nodes(); ++id) {
    const NodeRecord record = Unwrap(db->GetNode(id));
    if (!record.is_element()) text_nodes.push_back(record);
  }
  ASSERT_EQ(text_nodes.size(), 2u);
  // Five raw words even though only "search engine" survives stopword
  // removal: the last *kept* token would give num_words = 2.
  EXPECT_EQ(text_nodes[0].num_words, 5u);
  EXPECT_EQ(text_nodes[0].end, text_nodes[0].start + 5);
  // Stopword-only text keeps no tokens but still occupies its three
  // word positions (the old derivation collapsed it to width 0).
  EXPECT_EQ(text_nodes[1].num_words, 3u);
  EXPECT_EQ(text_nodes[1].end, text_nodes[1].start + 3);
  // Document word count — and with it the element interval spans that
  // length-normalized (bm25) scoring divides by — covers all raw words.
  EXPECT_EQ(db->documents()[0].word_count, 8u);
  const NodeRecord root = Unwrap(db->GetNode(db->documents()[0].root));
  EXPECT_GE(root.end - root.start, 8u);
}

TEST(DatabaseTest, ReconstructSubtreeMatchesSource) {
  TempDir dir;
  auto db = MakeTestDatabase(dir.path());
  ExpectOk(workload::LoadPaperExample(db.get()));
  const auto* authors = db->ElementsWithTag(db->LookupTag("author"));
  ASSERT_NE(authors, nullptr);
  const auto dom = Unwrap(db->ReconstructSubtree(authors->front()));
  EXPECT_EQ(dom->tag(), "author");
  EXPECT_EQ(*dom->FindAttribute("id"), "first");
  ASSERT_EQ(dom->children().size(), 2u);
  EXPECT_EQ(dom->children()[0]->tag(), "fname");
  EXPECT_EQ(dom->children()[0]->AllText(), "Jane");
}

TEST(DatabaseTest, SaveAndReopen) {
  TempDir dir;
  uint64_t nodes = 0;
  {
    auto db = MakeTestDatabase(dir.path());
    ExpectOk(workload::LoadPaperExample(db.get()));
    nodes = db->num_nodes();
    ExpectOk(db->Save());
  }
  storage::DatabaseOptions options;
  options.buffer_pool_pages = 64;
  auto db = Unwrap(Database::Open(dir.path(), options));
  EXPECT_EQ(db->num_nodes(), nodes);
  ASSERT_EQ(db->documents().size(), 2u);
  EXPECT_EQ(db->documents()[1].name, "reviews.xml");
  // Navigation and text still work after reopen.
  const auto* reviews = db->ElementsWithTag(db->LookupTag("review"));
  ASSERT_NE(reviews, nullptr);
  EXPECT_EQ(reviews->size(), 2u);
  EXPECT_EQ(Unwrap(db->AllTextOf((*reviews)[1])).substr(0, 16),
            "WWW Technologies");
}

TEST(DatabaseTest, MultipleDocumentsAreIsolated) {
  TempDir dir;
  auto db = MakeTestDatabase(dir.path());
  const auto doc1 = Unwrap(xml::ParseXml("<a><b>one two</b></a>", "d1"));
  const auto doc2 = Unwrap(xml::ParseXml("<a><b>three</b></a>", "d2"));
  const DocId id1 = Unwrap(db->AddDocument(doc1));
  const DocId id2 = Unwrap(db->AddDocument(doc2));
  EXPECT_NE(id1, id2);
  const NodeRecord root2 = Unwrap(db->GetNode(db->documents()[id2].root));
  EXPECT_EQ(root2.doc_id, id2);
  // Documents get independent interval spaces.
  const NodeRecord root1 = Unwrap(db->GetNode(db->documents()[id1].root));
  EXPECT_FALSE(root1.Contains(root2));
  EXPECT_FALSE(root2.Contains(root1));
}

TEST(DatabaseTest, GetDocumentByName) {
  TempDir dir;
  auto db = MakeTestDatabase(dir.path());
  ExpectOk(workload::LoadPaperExample(db.get()));
  EXPECT_EQ(Unwrap(db->GetDocumentByName("reviews.xml")).doc_id, 1u);
  EXPECT_TRUE(db->GetDocumentByName("nope.xml").status().IsNotFound());
}

TEST(DatabaseTest, RejectsEmptyDocument) {
  TempDir dir;
  auto db = MakeTestDatabase(dir.path());
  xml::XmlDocument empty;
  EXPECT_TRUE(db->AddDocument(empty).status().IsInvalidArgument());
}

TEST(AtomicWriteFileTest, RoundTripsThroughReadFileToString) {
  TempDir dir;
  const std::string path = dir.path() + "/blob";
  const std::string payload(100000, 'q');
  ExpectOk(AtomicWriteFile(path, payload));
  EXPECT_EQ(Unwrap(ReadFileToString(path)), payload);
  EXPECT_TRUE(ReadFileToString(dir.path() + "/absent").status().IsIOError());
}

// Regression: AtomicWriteFile used a fixed "<path>.tmp" scratch name,
// so two concurrent writers raced on the same tmp file — one renamed
// the other's half-written bytes into place (or failed on the vanished
// tmp). With per-writer unique tmp names the final file is always one
// writer's complete payload and no scratch files are left behind.
TEST(AtomicWriteFileTest, ConcurrentWritersNeverInterleaveOrLeakTmp) {
  TempDir dir;
  const std::string path = dir.path() + "/contested";
  constexpr int kRounds = 200;
  // Big enough that a write spans multiple syscalls' worth of bytes;
  // distinct fill characters make any splice detectable.
  const std::string a(64 * 1024, 'A');
  const std::string b(64 * 1024, 'B');

  std::thread writer_a([&] {
    for (int i = 0; i < kRounds; ++i) ExpectOk(AtomicWriteFile(path, a));
  });
  std::thread writer_b([&] {
    for (int i = 0; i < kRounds; ++i) ExpectOk(AtomicWriteFile(path, b));
  });
  writer_a.join();
  writer_b.join();

  const std::string final_bytes = Unwrap(ReadFileToString(path));
  EXPECT_TRUE(final_bytes == a || final_bytes == b)
      << "file is a splice of two writers (size=" << final_bytes.size()
      << ")";

  // No abandoned scratch files: the directory holds exactly the target.
  std::vector<std::string> entries;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
    entries.push_back(entry.path().filename().string());
  }
  ASSERT_EQ(entries.size(), 1u)
      << (entries.empty() ? "target file missing"
                          : "unexpected leftover: " + entries.back());
  EXPECT_EQ(entries.front(), "contested");
}

}  // namespace
}  // namespace tix::storage
