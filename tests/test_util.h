#ifndef TIX_TESTS_TEST_UTIL_H_
#define TIX_TESTS_TEST_UTIL_H_

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/result.h"
#include "storage/database.h"

/// \file
/// Shared test scaffolding: temporary directories and database fixtures.

namespace tix::testing {

/// RAII temporary directory under $TMPDIR (removed on destruction).
class TempDir {
 public:
  TempDir() {
    std::string templ =
        (std::filesystem::temp_directory_path() / "tix_test_XXXXXX").string();
    char* made = ::mkdtemp(templ.data());
    EXPECT_NE(made, nullptr);
    path_ = templ;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Unwraps a Result in a test, failing loudly on error.
template <typename T>
T Unwrap(Result<T> result) {
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) std::abort();
  return std::move(result).value();
}

inline void ExpectOk(const Status& status) {
  EXPECT_TRUE(status.ok()) << status.ToString();
}

/// Creates a fresh database in `dir` with a small buffer pool so paging
/// paths get exercised even by unit tests.
inline std::unique_ptr<storage::Database> MakeTestDatabase(
    const std::string& dir, size_t pool_pages = 64) {
  storage::DatabaseOptions options;
  options.buffer_pool_pages = pool_pages;
  return Unwrap(storage::Database::Create(dir, options));
}

}  // namespace tix::testing

#endif  // TIX_TESTS_TEST_UTIL_H_
