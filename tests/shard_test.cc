// Scatter-gather sharding tests (docs/SHARDING.md): serial == sharded
// byte-equivalence at 1/2/4 shards across k in {1, 3, 10, unlimited},
// heap-floor gossip on/off equivalence, shard-death partial-failure
// semantics (error, never a hang), per-query deadline propagation to
// slow shards, client I/O timeouts against silent peers, and protocol
// robustness on the coordinator paths (malformed kPartialResult /
// kFloor payloads, truncated and oversized frames, plus a seeded
// corruption fuzz of the shard-partial codec). Runs under TSan/ASan
// via scripts/check_sanitizers.sh — the coordinator fan-out threads and
// the mid-query gossip exchange are the new concurrency surface.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "index/inverted_index.h"
#include "server/client.h"
#include "server/coordinator.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/shard_protocol.h"
#include "storage/database.h"
#include "tests/test_util.h"
#include "workload/corpus.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace tix::server {
namespace {

using ::tix::testing::ExpectOk;
using ::tix::testing::MakeTestDatabase;
using ::tix::testing::TempDir;
using ::tix::testing::Unwrap;

// ---------------------------------------------------------------------------
// Shard-protocol codecs

TEST(ShardProtocolTest, QueryRequestRoundTrip) {
  ShardQueryRequest request;
  request.deadline_ms = 1234;
  request.render_limit = 7;
  request.floor_gossip = false;
  request.query = "FOR $a IN document(\"*\")//article//* RETURN $a";
  const ShardQueryRequest decoded =
      Unwrap(DecodeShardQuery(EncodeShardQuery(request)));
  EXPECT_EQ(decoded.deadline_ms, request.deadline_ms);
  EXPECT_EQ(decoded.render_limit, request.render_limit);
  EXPECT_EQ(decoded.floor_gossip, request.floor_gossip);
  EXPECT_EQ(decoded.query, request.query);
}

TEST(ShardProtocolTest, FloorRoundTripAndRejects) {
  EXPECT_EQ(Unwrap(DecodeFloor(EncodeFloor(3.25))), 3.25);
  const double neg_inf = -std::numeric_limits<double>::infinity();
  EXPECT_EQ(Unwrap(DecodeFloor(EncodeFloor(neg_inf))), neg_inf);
  EXPECT_FALSE(DecodeFloor("").ok());
  EXPECT_FALSE(DecodeFloor("1234567").ok());
  EXPECT_FALSE(DecodeFloor("123456789").ok());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(DecodeFloor(EncodeFloor(nan)).ok());
}

ShardPartialResult SamplePartial() {
  ShardPartialResult partial;
  partial.anchors = 11;
  partial.scored = 5;
  partial.total_count = 3;
  for (uint64_t i = 0; i < 3; ++i) {
    ShardResultEntry entry;
    entry.node = 100 + i;
    entry.doc = static_cast<uint32_t>(2 * i);
    entry.start = static_cast<uint32_t>(10 * i);
    entry.end = static_cast<uint32_t>(10 * i + 5);
    entry.level = static_cast<uint16_t>(i);
    entry.score = 1.5 - 0.25 * static_cast<double>(i);
    partial.entries.push_back(entry);
  }
  partial.fragments = {"<result>a</result>\n", "<result>b</result>\n"};
  return partial;
}

TEST(ShardProtocolTest, PartialResultRoundTrip) {
  const ShardPartialResult original = SamplePartial();
  const ShardPartialResult decoded =
      Unwrap(DecodeShardPartial(EncodeShardPartial(original)));
  EXPECT_EQ(decoded.anchors, original.anchors);
  EXPECT_EQ(decoded.scored, original.scored);
  EXPECT_EQ(decoded.total_count, original.total_count);
  ASSERT_EQ(decoded.entries.size(), original.entries.size());
  for (size_t i = 0; i < decoded.entries.size(); ++i) {
    EXPECT_EQ(decoded.entries[i].node, original.entries[i].node);
    EXPECT_EQ(decoded.entries[i].doc, original.entries[i].doc);
    EXPECT_EQ(decoded.entries[i].start, original.entries[i].start);
    EXPECT_EQ(decoded.entries[i].end, original.entries[i].end);
    EXPECT_EQ(decoded.entries[i].level, original.entries[i].level);
    EXPECT_EQ(decoded.entries[i].score, original.entries[i].score);
  }
  EXPECT_EQ(decoded.fragments, original.fragments);
}

TEST(ShardProtocolTest, TruncatedPartialRejectedAtEveryLength) {
  const std::string encoded = EncodeShardPartial(SamplePartial());
  for (size_t length = 0; length < encoded.size(); ++length) {
    EXPECT_FALSE(DecodeShardPartial(encoded.substr(0, length)).ok())
        << "prefix of length " << length << " decoded";
  }
}

TEST(ShardProtocolTest, TrailingGarbageRejected) {
  std::string encoded = EncodeShardPartial(SamplePartial());
  encoded += 'x';
  EXPECT_FALSE(DecodeShardPartial(encoded).ok());
}

TEST(ShardProtocolTest, CorruptionFuzzNeverCrashes) {
  // Seeded xorshift corruption loop (fault_test.cc style): flip a few
  // bytes anywhere in a valid encoding; the decoder must either reject
  // or produce a structurally sane value — never crash or overread
  // (ASan is the real assertion here).
  const std::string clean = EncodeShardPartial(SamplePartial());
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 500; ++round) {
    std::string corrupted = clean;
    const int flips = 1 + static_cast<int>(next() % 4);
    for (int f = 0; f < flips; ++f) {
      corrupted[next() % corrupted.size()] ^=
          static_cast<char>(1 + next() % 255);
    }
    const Result<ShardPartialResult> decoded = DecodeShardPartial(corrupted);
    if (decoded.ok()) {
      EXPECT_LE(decoded.value().fragments.size(),
                decoded.value().entries.size());
    }
  }
}

TEST(ShardProtocolTest, QueryRequestRejectsTruncationAndUnknownFlags) {
  const std::string encoded = EncodeShardQuery(ShardQueryRequest{});
  for (size_t length = 0; length < 9; ++length) {
    EXPECT_FALSE(DecodeShardQuery(encoded.substr(0, length)).ok());
  }
  std::string bad_flags = encoded;
  bad_flags[8] = static_cast<char>(0x80);
  EXPECT_FALSE(DecodeShardQuery(bad_flags).ok());
}

TEST(ShardListTest, ParsesAndValidates) {
  const std::vector<ShardEndpoint> shards =
      Unwrap(ParseShardList("127.0.0.1:7001,localhost:7002"));
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[0].host, "127.0.0.1");
  EXPECT_EQ(shards[0].port, 7001);
  EXPECT_EQ(shards[1].host, "localhost");
  EXPECT_EQ(shards[1].port, 7002);
  EXPECT_FALSE(ParseShardList("").ok());
  EXPECT_FALSE(ParseShardList("127.0.0.1").ok());
  EXPECT_FALSE(ParseShardList("127.0.0.1:0").ok());
  EXPECT_FALSE(ParseShardList("127.0.0.1:99999").ok());
  EXPECT_FALSE(ParseShardList("127.0.0.1:7001,").ok());
  EXPECT_FALSE(ParseShardList(":7001").ok());
  EXPECT_FALSE(ParseShardList("host:12x").ok());
}

// ---------------------------------------------------------------------------
// End-to-end fleet fixture

/// One running fleet: N shard servers over round-robin-dealt copies of
/// the corpus, plus a coordinator fronting them.
struct Fleet {
  std::vector<std::unique_ptr<storage::Database>> dbs;
  std::vector<std::unique_ptr<index::InvertedIndex>> indexes;
  std::vector<std::unique_ptr<TixServer>> shards;
  std::unique_ptr<TixServer> coordinator;

  Fleet() = default;
  Fleet(Fleet&&) = default;
  Fleet& operator=(Fleet&&) = default;
  ~Fleet() {
    if (coordinator != nullptr) coordinator->Stop();
    for (const auto& shard : shards) {
      if (shard != nullptr) shard->Stop();
    }
  }
};

class ShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // One master corpus, serialized per document; every shard layout
    // (including the 1-shard serial baseline) re-ingests these exact
    // bytes, so equivalence checks compare identical logical data.
    auto master = MakeTestDatabase(dir_.path() + "/master", 256);
    workload::CorpusOptions options;
    options.num_articles = 24;
    options.seed = 7;
    options.planted_terms = {{"xhot", 300}, {"xwarm", 60}, {"xcold", 6}};
    Unwrap(workload::GenerateCorpus(master.get(), options));
    for (const storage::DocumentInfo& info : master->documents()) {
      const auto subtree = Unwrap(master->ReconstructSubtree(info.root));
      documents_.push_back({info.name, xml::SerializeNode(*subtree)});
    }
  }

  /// Deals document g to shard g % n (local id g / n), matching the
  /// server's global-id reconstruction local * n + shard_id.
  Fleet MakeFleet(size_t n, bool gossip = true,
                  ServerOptions shard_options = {},
                  ServerOptions coordinator_options = {},
                  uint64_t io_timeout_ms = 5000) {
    Fleet fleet;
    ShardFleetOptions fleet_options;
    fleet_options.floor_gossip = gossip;
    fleet_options.io_timeout_ms = io_timeout_ms;
    for (size_t i = 0; i < n; ++i) {
      auto db = MakeTestDatabase(
          dir_.path() + "/s" + std::to_string(n) + "_" + std::to_string(i),
          256);
      for (size_t g = i; g < documents_.size(); g += n) {
        const auto parsed = Unwrap(
            xml::ParseXml(documents_[g].second, documents_[g].first));
        Unwrap(db->AddDocument(parsed));
      }
      auto index = std::make_unique<index::InvertedIndex>(
          Unwrap(index::InvertedIndex::Build(db.get())));
      ServerOptions options = shard_options;
      options.shard_id = static_cast<uint32_t>(i);
      options.shard_count = static_cast<uint32_t>(n);
      options.result_cache_bytes = 0;
      auto server =
          std::make_unique<TixServer>(db.get(), index.get(), options);
      ExpectOk(server->Start());
      fleet_options.shards.push_back({"127.0.0.1", server->port()});
      fleet.dbs.push_back(std::move(db));
      fleet.indexes.push_back(std::move(index));
      fleet.shards.push_back(std::move(server));
    }
    fleet.coordinator = std::make_unique<TixServer>(
        std::move(fleet_options), coordinator_options);
    ExpectOk(fleet.coordinator->Start());
    return fleet;
  }

  static Client ConnectTo(const TixServer& server) {
    return Unwrap(Client::Connect("127.0.0.1", server.port()));
  }

  /// The equivalence contract masks the header's `scored` statistic:
  /// it counts elements surviving pruning, which legitimately differs
  /// with pruning tightness (even single-node pushdown on/off differ).
  /// Result count, anchors and every rendered byte must match exactly.
  static std::string MaskScored(std::string response) {
    const size_t begin = response.find(", scored ");
    if (begin == std::string::npos) return response;
    const size_t end = response.find(')', begin);
    if (end == std::string::npos) return response;
    return response.replace(begin, end - begin, ", scored _");
  }

  /// The canonical query set: every k regime from ISSUE (1, 3, 10,
  /// unlimited), fleet-wide and single-document scopes, a min-score
  /// threshold, and an unscored structural query. The single-step
  /// `//*` queries are top-K-pushdown eligible, so with gossip on the
  /// shards exchange kFloor frames mid-query; the `//article//...`
  /// shapes take the unpruned path and exercise the plain merge.
  static std::vector<std::string> Queries() {
    return {
        R"(FOR $a IN document("*")//*
           SCORE $a USING foo({"xhot"}) THRESHOLD STOP AFTER 1 RETURN $a)",
        R"(FOR $a IN document("*")//*
           SCORE $a USING foo({"xhot", "xwarm"}) THRESHOLD STOP AFTER 3 RETURN $a)",
        R"(FOR $a IN document("*")//*
           SCORE $a USING foo({"xwarm"}) THRESHOLD STOP AFTER 10 RETURN $a)",
        R"(FOR $a IN document("*")//article//*
           SCORE $a USING foo({"xhot"}) THRESHOLD STOP AFTER 3 RETURN $a)",
        R"(FOR $a IN document("*")//article//sec
           SCORE $a USING foo({"xcold", "xwarm"}) RETURN $a)",
        R"(FOR $a IN document("*")//article//p
           SCORE $a USING foo({"xhot", "xcold"}) THRESHOLD score > 0.1 RETURN $a)",
        R"(FOR $a IN document("article3.xml")//article//*
           SCORE $a USING foo({"xhot"}) THRESHOLD STOP AFTER 5 RETURN $a)",
        R"(FOR $a IN document("article7.xml")//article//sec
           SCORE $a USING foo({"xwarm"}) RETURN $a)",
    };
  }

  TempDir dir_;
  std::vector<std::pair<std::string, std::string>> documents_;
};

TEST_F(ShardTest, SerialEqualsShardedAtEveryShardCount) {
  // Serial baseline: the 1-shard database queried directly (no
  // coordinator in the path at all).
  Fleet serial = MakeFleet(1);
  Client baseline = ConnectTo(*serial.shards[0]);
  std::vector<std::string> expected;
  for (const std::string& query : Queries()) {
    expected.push_back(MaskScored(Unwrap(baseline.Query(query))));
  }
  const auto queries = Queries();
  // n=1 reuses the baseline fleet's coordinator (fan-out of one).
  {
    Client client = ConnectTo(*serial.coordinator);
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(MaskScored(Unwrap(client.Query(queries[q]))), expected[q])
          << "n=1 query=" << queries[q];
    }
  }
  for (const size_t n : {size_t{2}, size_t{4}}) {
    Fleet fleet = MakeFleet(n);
    Client client = ConnectTo(*fleet.coordinator);
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(MaskScored(Unwrap(client.Query(queries[q]))), expected[q])
          << "n=" << n << " query=" << queries[q];
    }
  }
}

TEST_F(ShardTest, GossipOffProducesIdenticalResponses) {
  Fleet with = MakeFleet(2, /*gossip=*/true);
  Fleet without = MakeFleet(2, /*gossip=*/false);
  Client client_with = ConnectTo(*with.coordinator);
  Client client_without = ConnectTo(*without.coordinator);
  for (const std::string& query : Queries()) {
    EXPECT_EQ(MaskScored(Unwrap(client_with.Query(query))),
              MaskScored(Unwrap(client_without.Query(query))))
        << query;
  }
  EXPECT_EQ(without.coordinator->Stats().queries_error, 0u);
}

TEST_F(ShardTest, GossipActuallyExchangesFloorsOnPushdownQueries) {
  Fleet fleet = MakeFleet(2, /*gossip=*/true);
  Client client = ConnectTo(*fleet.coordinator);
  // Queries()[0] is pushdown eligible (single-step //* with STOP
  // AFTER), so each shard polls the coordinator at least once.
  ExpectOk(client.Query(Queries()[0]).status());
  const std::string stats = Unwrap(client.Stats());
  const size_t key = stats.find("\"floor_exchanges\":");
  ASSERT_NE(key, std::string::npos) << stats;
  const uint64_t exchanges =
      std::strtoull(stats.c_str() + key + strlen("\"floor_exchanges\":"),
                    nullptr, 10);
  EXPECT_GE(exchanges, 2u) << stats;
}

TEST_F(ShardTest, MissingDocumentEverywhereIsNotFound) {
  Fleet fleet = MakeFleet(2);
  Client client = ConnectTo(*fleet.coordinator);
  const auto result = client.Query(
      R"(FOR $a IN document("nosuch.xml")//article//* RETURN $a)");
  EXPECT_TRUE(result.status().IsNotFound()) << result.status().ToString();
}

TEST_F(ShardTest, CoordinatorRejectsMutationsExplainAndNesting) {
  Fleet fleet = MakeFleet(2);
  Client client = ConnectTo(*fleet.coordinator);
  EXPECT_FALSE(client.Ingest("x.xml", "<a>hi</a>").ok());
  EXPECT_FALSE(client.Delete("article0.xml").ok());
  EXPECT_FALSE(client.Compact().ok());
  EXPECT_FALSE(
      client
          .QueryExplain(
              R"(FOR $a IN document("*")//article//sec RETURN $a)")
          .ok());
  // kQueryShard against a coordinator: fleets do not nest.
  ShardQueryRequest request;
  request.query = R"(FOR $a IN document("*")//article//sec RETURN $a)";
  Client nested = ConnectTo(*fleet.coordinator);
  EXPECT_FALSE(nested.ShardQuery(EncodeShardQuery(request), nullptr).ok());
  // The connection survives each rejection (error frames, not closes).
  ExpectOk(client.Ping());
}

TEST_F(ShardTest, ShardDeathFailsFastNotHangs) {
  Fleet fleet = MakeFleet(2, /*gossip=*/true, {}, {}, /*io_timeout_ms=*/500);
  fleet.shards[1]->Stop();
  Client client = ConnectTo(*fleet.coordinator);
  const auto start = std::chrono::steady_clock::now();
  const auto result = client.Query(Queries()[0]);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(result.ok());
  // Partial failure is an error naming the dead shard, never a hang:
  // the dial/read is bounded by io_timeout_ms.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
  EXPECT_NE(result.status().ToString().find("shard 1"), std::string::npos)
      << result.status().ToString();
  EXPECT_GE(fleet.coordinator->Stats().queries_error, 1u);
}

TEST_F(ShardTest, ForwardedDeadlineCutsOffSlowShard) {
  // The coordinator's 100ms budget is forwarded over the wire; a shard
  // stalled 400ms (after admission, before execution) must then fail
  // its own execution deadline — even though the shard itself has no
  // --timeout-ms configured and the I/O timeout (5s) never fires.
  ServerOptions slow;
  slow.test_query_hook = [](const std::string&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
  };
  ServerOptions coordinator_options;
  coordinator_options.query_timeout_ms = 100;
  Fleet fleet = MakeFleet(2, /*gossip=*/true, slow, coordinator_options);
  Client client = ConnectTo(*fleet.coordinator);
  const auto result = client.Query(Queries()[0]);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  EXPECT_GE(fleet.coordinator->Stats().queries_timeout, 1u);
}

// ---------------------------------------------------------------------------
// Client I/O timeouts (satellite: Options::io_timeout_ms)

/// A listening socket that completes TCP handshakes (kernel backlog)
/// but never reads or writes — the canonical silent dead peer.
class SilentPeer {
 public:
  SilentPeer() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    EXPECT_EQ(::listen(fd_, 8), 0);
    socklen_t len = sizeof addr;
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len),
              0);
    port_ = ntohs(addr.sin_port);
  }
  ~SilentPeer() {
    if (fd_ >= 0) ::close(fd_);
  }
  uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

TEST(ClientTimeoutTest, SilentPeerYieldsDeadlineExceeded) {
  SilentPeer peer;
  ClientOptions options;
  options.io_timeout_ms = 200;
  Client client = Unwrap(Client::Connect("127.0.0.1", peer.port(), options));
  const auto start = std::chrono::steady_clock::now();
  const auto result = client.Query("FOR $a IN document(\"x\") RETURN $a");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
}

TEST(ClientTimeoutTest, ConnectTimeoutOnBlackholeAddress) {
  ClientOptions options;
  options.io_timeout_ms = 200;
  // RFC 5737 TEST-NET-1: normally unrouted, so the SYN gets no answer
  // and only the bounded poll brings us back. Sandboxed/NATed networks
  // sometimes intercept the connect; all we can assert portably is that
  // the call returns promptly either way.
  const auto start = std::chrono::steady_clock::now();
  const auto result = Client::Connect("192.0.2.1", 9, options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
  if (result.ok()) {
    GTEST_SKIP() << "test network is routed here; timeout path not reachable";
  }
}

// ---------------------------------------------------------------------------
// Hostile shard responses on the coordinator path

/// A fake shard: accepts one connection, reads one frame, writes a
/// scripted raw byte response, and holds the socket open until torn
/// down (so reads see the bytes, not a reset).
class FakeShard {
 public:
  explicit FakeShard(std::string response) : response_(std::move(response)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    ::listen(listen_fd_, 1);
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] {
      conn_fd_ = ::accept(listen_fd_, nullptr, nullptr);
      if (conn_fd_ < 0) return;
      // Read (and discard) the request frame, then answer with the
      // scripted bytes.
      char buffer[4096];
      (void)::read(conn_fd_, buffer, sizeof buffer);
      (void)::write(conn_fd_, response_.data(), response_.size());
    });
  }
  ~FakeShard() {
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    if (thread_.joinable()) thread_.join();
    if (conn_fd_ >= 0) ::close(conn_fd_);
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }
  uint16_t port() const { return port_; }

 private:
  std::string response_;
  int listen_fd_ = -1;
  int conn_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
};

std::string RawFrame(uint8_t type, const std::string& payload) {
  // The length field counts the type byte plus the payload.
  const uint32_t length = static_cast<uint32_t>(payload.size()) + 1;
  std::string frame;
  frame.push_back(static_cast<char>(length & 0xff));
  frame.push_back(static_cast<char>((length >> 8) & 0xff));
  frame.push_back(static_cast<char>((length >> 16) & 0xff));
  frame.push_back(static_cast<char>((length >> 24) & 0xff));
  frame.push_back(static_cast<char>(type));
  frame += payload;
  return frame;
}

Result<std::string> AskFakeShard(const std::string& raw_response) {
  FakeShard shard(raw_response);
  ShardFleetOptions options;
  options.shards = {{"127.0.0.1", shard.port()}};
  options.io_timeout_ms = 1000;
  ShardFleet fleet(options);
  return fleet.Execute(
      R"(FOR $a IN document("*")//article//*
         SCORE $a USING foo({"xhot"}) THRESHOLD STOP AFTER 3 RETURN $a)",
      Deadline());
}

TEST(HostileShardTest, GarbagePartialResultIsCorruption) {
  const auto result =
      AskFakeShard(RawFrame(0x85, "definitely not a partial result"));
  EXPECT_TRUE(result.status().IsCorruption()) << result.status().ToString();
}

TEST(HostileShardTest, UnknownFrameTypeIsError) {
  const auto result = AskFakeShard(RawFrame(0x77, "mystery"));
  EXPECT_FALSE(result.ok());
}

TEST(HostileShardTest, OversizedFrameHeaderIsCorruption) {
  // Length field beyond kMaxFrameBytes: rejected before any allocation.
  std::string raw = "\xff\xff\xff\xff";
  raw.push_back(static_cast<char>(0x85));
  const auto result = AskFakeShard(raw);
  EXPECT_TRUE(result.status().IsCorruption()) << result.status().ToString();
}

TEST(HostileShardTest, TruncatedFrameIsError) {
  // Claims 100 payload bytes, delivers 3, then the connection idles
  // until the io timeout (the fake holds it open): bounded failure.
  std::string raw = RawFrame(0x85, "abc");
  raw[0] = 100;
  const auto result = AskFakeShard(raw);
  EXPECT_FALSE(result.ok());
}

TEST(HostileShardTest, MalformedFloorFrameAbortsQuery) {
  // A kFloor frame with a bad payload mid-exchange: the client must
  // fail the leg (and thus the query), not loop or crash.
  const auto result = AskFakeShard(RawFrame(0x0A, "bad"));
  EXPECT_FALSE(result.ok());
}

TEST(HostileShardTest, ErrorFrameSurfacesDecodedStatus) {
  const auto result = AskFakeShard(
      RawFrame(0x82, std::string(1, '\x01') + "shard says no"));
  EXPECT_TRUE(result.status().IsInvalidArgument())
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("shard says no"),
            std::string::npos);
}

}  // namespace
}  // namespace tix::server
