#include <algorithm>
#include <fstream>

#include <gtest/gtest.h>

#include "index/inverted_index.h"
#include "tests/test_util.h"
#include "workload/corpus.h"
#include "workload/paper_example.h"
#include "xml/parser.h"

namespace tix::index {
namespace {

using testing::ExpectOk;
using testing::MakeTestDatabase;
using testing::TempDir;
using testing::Unwrap;

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTestDatabase(dir_.path());
    ExpectOk(workload::LoadPaperExample(db_.get()));
    index_ = std::make_unique<InvertedIndex>(
        Unwrap(InvertedIndex::Build(db_.get())));
  }

  TempDir dir_;
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<InvertedIndex> index_;
};

TEST_F(IndexTest, TermFrequencies) {
  // "search" appears in section titles and paragraphs of articles.xml.
  EXPECT_GT(index_->TermFrequency("search"), 3u);
  EXPECT_EQ(index_->TermFrequency("nonexistentterm"), 0u);
  // Lookup is case-normalized like the corpus.
  EXPECT_EQ(index_->TermFrequency("SEARCH"),
            index_->TermFrequency("search"));
}

TEST_F(IndexTest, PostingsAreSortedAndPointAtTextNodes) {
  const PostingList* list = index_->Lookup("search");
  ASSERT_NE(list, nullptr);
  const std::vector<Posting> postings = list->DecodeAll();
  ASSERT_EQ(postings.size(), list->size());
  for (size_t i = 0; i < postings.size(); ++i) {
    const Posting& posting = postings[i];
    if (i > 0) {
      EXPECT_TRUE(PostingLess(postings[i - 1], posting));
    }
    const storage::NodeRecord record = Unwrap(db_->GetNode(posting.node_id));
    EXPECT_TRUE(record.is_text());
    EXPECT_GE(posting.word_pos, record.start);
    EXPECT_LT(posting.word_pos, record.end + 1);
  }
}

TEST_F(IndexTest, WordPositionsMatchTokenOffsets) {
  // "newsinessence" occurs exactly once; verify its absolute position
  // equals text-node start + token offset.
  const PostingList* list = index_->Lookup("newsinessence");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->size(), 1u);
  const Posting posting = list->DecodeAll()[0];
  const storage::NodeRecord record = Unwrap(db_->GetNode(posting.node_id));
  const std::string data = Unwrap(db_->TextOf(record));
  const auto tokens = db_->tokenizer().Tokenize(data);
  bool found = false;
  for (const auto& token : tokens) {
    if (token.term == "newsinessence") {
      EXPECT_EQ(posting.word_pos, record.start + token.position);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(IndexTest, DocAndNodeFrequencies) {
  const PostingList* list = index_->Lookup("technologies");
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->doc_frequency, 2u);  // articles.xml and reviews.xml
  EXPECT_GE(list->node_frequency, 3u);
  EXPECT_GT(index_->InverseDocumentFrequency("newsinessence"),
            index_->InverseDocumentFrequency("technologies"));
}

TEST_F(IndexTest, StatsAreConsistent) {
  const IndexStats& stats = index_->stats();
  EXPECT_EQ(stats.num_documents, 2u);
  EXPECT_GT(stats.num_terms, 20u);
  EXPECT_GT(stats.num_postings, 50u);
  uint64_t total = 0;
  for (text::TermId id = 0; id < stats.num_terms; ++id) {
    total += index_->LookupId(id)->size();
  }
  EXPECT_EQ(total, stats.num_postings);
}

TEST_F(IndexTest, SaveLoadRoundTrip) {
  const std::string path = dir_.path() + "/index.tix";
  ExpectOk(index_->SaveToFile(path));
  InvertedIndex loaded = Unwrap(InvertedIndex::LoadFromFile(path));
  EXPECT_EQ(loaded.stats().num_terms, index_->stats().num_terms);
  EXPECT_EQ(loaded.stats().num_postings, index_->stats().num_postings);
  const PostingList* original = index_->Lookup("search");
  const PostingList* restored = loaded.Lookup("search");
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->DecodeAll(), original->DecodeAll());
  EXPECT_EQ(restored->doc_frequency, original->doc_frequency);
}

TEST_F(IndexTest, LoadRejectsCorruptFile) {
  const std::string path = dir_.path() + "/bad.tix";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not an index";
  }
  EXPECT_FALSE(InvertedIndex::LoadFromFile(path).ok());
  EXPECT_FALSE(InvertedIndex::LoadFromFile(dir_.path() + "/missing").ok());
}

TEST_F(IndexTest, TermsWithFrequencyBetween) {
  const auto terms = index_->TermsWithFrequencyBetween(1, 1);
  EXPECT_FALSE(terms.empty());
  for (const std::string& term : terms) {
    EXPECT_EQ(index_->TermFrequency(term), 1u);
  }
}

TEST(IndexCorpusTest, PlantedFrequenciesAreExact) {
  TempDir dir;
  auto db = MakeTestDatabase(dir.path(), 512);
  workload::CorpusOptions options;
  options.num_articles = 30;
  options.planted_terms = {{"xalpha", 50}, {"xbeta", 200}, {"xgamma", 7}};
  options.planted_phrases = {{"xp1", "xp2", 40, 60, 25}};
  const auto corpus = Unwrap(workload::GenerateCorpus(db.get(), options));
  EXPECT_EQ(corpus.num_articles, 30u);
  InvertedIndex index = Unwrap(InvertedIndex::Build(db.get()));
  EXPECT_EQ(index.TermFrequency("xalpha"), 50u);
  EXPECT_EQ(index.TermFrequency("xbeta"), 200u);
  EXPECT_EQ(index.TermFrequency("xgamma"), 7u);
  EXPECT_EQ(index.TermFrequency("xp1"), 40u);
  EXPECT_EQ(index.TermFrequency("xp2"), 60u);
}

TEST(IndexCorpusTest, GenerationIsDeterministic) {
  workload::CorpusOptions options;
  options.num_articles = 5;
  options.planted_terms = {{"xseed", 11}};

  auto build = [&](const std::string& dir) {
    auto db = MakeTestDatabase(dir, 256);
    Unwrap(workload::GenerateCorpus(db.get(), options));
    InvertedIndex index = Unwrap(InvertedIndex::Build(db.get()));
    const PostingList* list = index.Lookup("xseed");
    return list->DecodeAll();
  };
  TempDir dir1, dir2;
  EXPECT_EQ(build(dir1.path()), build(dir2.path()));
}

TEST(IndexCorpusTest, OverfullPlantingRejected) {
  TempDir dir;
  auto db = MakeTestDatabase(dir.path(), 256);
  workload::CorpusOptions options;
  options.num_articles = 1;
  options.planted_terms = {{"xhuge", 1000000}};
  EXPECT_TRUE(
      workload::GenerateCorpus(db.get(), options).status().IsInvalidArgument());
}

}  // namespace
}  // namespace tix::index
