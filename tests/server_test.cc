// Resident-server tests: wire protocol framing, query-text
// normalization, the result cache (unit + concurrent), and the
// end-to-end TixServer — byte-identical results vs the direct engine
// and vs serial runs, cache hit/miss equivalence, admission control,
// per-query timeouts and graceful shutdown. The whole file runs under
// TSan via scripts/check_sanitizers.sh; the concurrency tests here are
// the data-race check for the shared-everything serving path.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "index/inverted_index.h"
#include "query/engine.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/result_cache.h"
#include "server/server.h"
#include "tests/test_util.h"
#include "workload/corpus.h"

namespace tix::server {
namespace {

using ::tix::testing::ExpectOk;
using ::tix::testing::MakeTestDatabase;
using ::tix::testing::TempDir;
using ::tix::testing::Unwrap;

// ---------------------------------------------------------------------------
// Protocol framing

class SocketPair {
 public:
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0); }
  ~SocketPair() {
    ::close(fds_[0]);
    ::close(fds_[1]);
  }
  int a() const { return fds_[0]; }
  int b() const { return fds_[1]; }

 private:
  int fds_[2] = {-1, -1};
};

TEST(ProtocolTest, FrameRoundTrip) {
  SocketPair pair;
  ExpectOk(WriteFrame(pair.a(), FrameType::kQuery, "FOR $a ..."));
  const Frame frame = Unwrap(ReadFrame(pair.b()));
  EXPECT_EQ(frame.type, FrameType::kQuery);
  EXPECT_EQ(frame.payload, "FOR $a ...");
}

TEST(ProtocolTest, EmptyPayloadRoundTrip) {
  SocketPair pair;
  ExpectOk(WriteFrame(pair.a(), FrameType::kPing, ""));
  const Frame frame = Unwrap(ReadFrame(pair.b()));
  EXPECT_EQ(frame.type, FrameType::kPing);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(ProtocolTest, OversizeFrameRejectedOnWrite) {
  SocketPair pair;
  const std::string huge(kMaxFrameBytes, 'x');
  EXPECT_TRUE(
      WriteFrame(pair.a(), FrameType::kQuery, huge).IsInvalidArgument());
}

TEST(ProtocolTest, OversizeLengthRejectedOnRead) {
  SocketPair pair;
  // Hand-build a header whose length field exceeds the limit.
  const uint32_t length = kMaxFrameBytes + 1;
  char header[4] = {static_cast<char>(length & 0xff),
                    static_cast<char>((length >> 8) & 0xff),
                    static_cast<char>((length >> 16) & 0xff),
                    static_cast<char>((length >> 24) & 0xff)};
  ASSERT_EQ(::write(pair.a(), header, sizeof header), 4);
  EXPECT_TRUE(ReadFrame(pair.b()).status().IsCorruption());
}

TEST(ProtocolTest, CleanCloseBetweenFramesVsTruncation) {
  {
    SocketPair pair;
    ::shutdown(pair.a(), SHUT_WR);
    const Status status = ReadFrame(pair.b()).status();
    EXPECT_TRUE(status.IsIOError());
    EXPECT_EQ(status.message(), "connection closed");
  }
  {
    SocketPair pair;
    // Two header bytes, then EOF: a truncated frame, not a clean close.
    ASSERT_EQ(::write(pair.a(), "\x08\x00", 2), 2);
    ::shutdown(pair.a(), SHUT_WR);
    const Status status = ReadFrame(pair.b()).status();
    EXPECT_TRUE(status.IsIOError());
    EXPECT_NE(status.message(), "connection closed");
  }
}

TEST(ProtocolTest, ErrorPayloadRoundTrip) {
  const Status original = Status::ResourceExhausted("queue full");
  const Status decoded = DecodeError(EncodeError(original));
  EXPECT_TRUE(decoded.IsResourceExhausted());
  EXPECT_EQ(decoded.message(), "queue full");
}

// ---------------------------------------------------------------------------
// Query-text normalization

TEST(NormalizeQueryTest, CollapsesWhitespaceAndKeywordCase) {
  const std::string canonical = NormalizeQueryText(
      R"(FOR $a IN document("a.xml")//article//* SCORE $a USING foo({"xhot"}) RETURN $a)");
  EXPECT_EQ(NormalizeQueryText("for   $a   in\n\tdocument(\"a.xml\")//article//*\n"
                               "score $a using foo({\"xhot\"}) return $a"),
            canonical);
  // Comments vanish too.
  EXPECT_EQ(NormalizeQueryText("FOR $a IN document(\"a.xml\")//article//* # hi\n"
                               "SCORE $a USING foo({\"xhot\"}) RETURN $a"),
            canonical);
}

TEST(NormalizeQueryTest, PreservesCaseSensitiveParts) {
  // Tag names, document names and string literals must NOT fold case.
  const std::string upper =
      NormalizeQueryText(R"(FOR $a IN document("A.xml")//Article RETURN $a)");
  const std::string lower =
      NormalizeQueryText(R"(FOR $a IN document("a.xml")//article RETURN $a)");
  EXPECT_NE(upper, lower);
  EXPECT_NE(NormalizeQueryText(R"(FOR $a IN document("a.xml")//p SCORE $a USING foo({"Xhot"}) RETURN $a)"),
            NormalizeQueryText(R"(FOR $a IN document("a.xml")//p SCORE $a USING foo({"xhot"}) RETURN $a)"));
}

TEST(NormalizeQueryTest, UnlexableTextFallsBackToRaw) {
  EXPECT_EQ(NormalizeQueryText("FOR $a \x01 nope"), "FOR $a \x01 nope");
}

// ---------------------------------------------------------------------------
// Result cache (unit)

TEST(ResultCacheTest, HitMissAndPromotion) {
  ResultCache cache(1 << 20);
  EXPECT_EQ(cache.Lookup("q1", 0), nullptr);
  cache.Insert("q1", 0, std::make_shared<const std::string>("r1"));
  const auto hit = cache.Lookup("q1", 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "r1");
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCacheTest, EvictsLruUnderTinyBudget) {
  // Budget fits roughly two entries; the least recently used goes first.
  ResultCache cache(2 * (2 + 64 + 96));
  cache.Insert("a", 0, std::make_shared<const std::string>(std::string(64, 'a')));
  cache.Insert("b", 0, std::make_shared<const std::string>(std::string(64, 'b')));
  ASSERT_NE(cache.Lookup("a", 0), nullptr);  // promote "a"; "b" is now LRU
  cache.Insert("c", 0, std::make_shared<const std::string>(std::string(64, 'c')));
  EXPECT_NE(cache.Lookup("a", 0), nullptr);
  EXPECT_EQ(cache.Lookup("b", 0), nullptr);
  EXPECT_NE(cache.Lookup("c", 0), nullptr);
  EXPECT_GE(cache.Stats().evictions, 1u);
  EXPECT_LE(cache.Stats().bytes, cache.capacity_bytes());
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache(0);
  cache.Insert("q", 0, std::make_shared<const std::string>("r"));
  EXPECT_EQ(cache.Lookup("q", 0), nullptr);
  EXPECT_EQ(cache.Stats().entries, 0u);
}

TEST(ResultCacheTest, OversizePayloadNotAdmitted) {
  ResultCache cache(128);
  cache.Insert("q", 0, std::make_shared<const std::string>(std::string(256, 'x')));
  EXPECT_EQ(cache.Lookup("q", 0), nullptr);
  EXPECT_EQ(cache.Stats().bytes, 0u);
}

TEST(ResultCacheTest, ReplaceInPlaceKeepsOneEntry) {
  ResultCache cache(1 << 20);
  cache.Insert("q", 0, std::make_shared<const std::string>("old"));
  cache.Insert("q", 0, std::make_shared<const std::string>("new"));
  const auto hit = cache.Lookup("q", 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "new");
  EXPECT_EQ(cache.Stats().entries, 1u);
}

TEST(ResultCacheTest, ConcurrentHammer) {
  // Readers and writers race over a small key space with a budget that
  // forces constant eviction; correctness here is "no torn payloads, no
  // crashes" — and TSan turns any race into a failure.
  ResultCache cache(4 * (1 + 32 + 96));
  constexpr int kThreads = 8;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < 500; ++i) {
        const std::string key(1, static_cast<char>('a' + (t + i) % 6));
        if (const auto hit = cache.Lookup(key, 0); hit != nullptr) {
          // A cached payload is always the key repeated 32 times.
          EXPECT_EQ(*hit, std::string(32, key[0]));
        } else {
          cache.Insert(key, 0,
                       std::make_shared<const std::string>(
                           std::string(32, key[0])));
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  EXPECT_LE(cache.Stats().bytes, cache.capacity_bytes());
}

// ---------------------------------------------------------------------------
// End-to-end server

/// Builds one small seeded corpus + index and keeps them open for every
/// server constructed by a test (servers share them by design).
class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTestDatabase(dir_.path(), 256);
    workload::CorpusOptions options;
    options.num_articles = 20;
    options.seed = 7;
    options.planted_terms = {{"xhot", 200}, {"xwarm", 40}, {"xcold", 5}};
    Unwrap(workload::GenerateCorpus(db_.get(), options));
    index_ = std::make_unique<index::InvertedIndex>(
        Unwrap(index::InvertedIndex::Build(db_.get())));
  }

  /// The canonical queries used across the equivalence tests.
  std::vector<std::string> Queries() const {
    return {
        R"(FOR $a IN document("article0.xml")//article//*
           SCORE $a USING foo({"xhot"}) THRESHOLD STOP AFTER 5 RETURN $a)",
        R"(FOR $a IN document("article1.xml")//article//*
           SCORE $a USING foo({"xwarm", "xhot"}) THRESHOLD STOP AFTER 3 RETURN $a)",
        R"(FOR $a IN document("article2.xml")//article//sec
           SCORE $a USING foo({"xcold"}) RETURN $a)",
        R"(FOR $a IN document("article3.xml")//article//p
           SCORE $a USING foo({"xhot", "xcold"}) THRESHOLD score > 0.1 RETURN $a)",
    };
  }

  /// What the server should answer for `text`: the same header +
  /// RenderXml the direct engine produces.
  std::string DirectAnswer(const std::string& text, size_t limit = 10) {
    query::QueryEngine engine(db_.get(), index_.get());
    const query::QueryOutput output = Unwrap(engine.ExecuteText(text));
    std::string expected = StrFormat(
        "%zu results (anchors %llu, scored %llu)\n", output.results.size(),
        (unsigned long long)output.stats.anchors,
        (unsigned long long)output.stats.scored_elements);
    expected += Unwrap(engine.RenderXml(output, limit));
    return expected;
  }

  std::unique_ptr<TixServer> StartServer(ServerOptions options = {}) {
    auto server =
        std::make_unique<TixServer>(db_.get(), index_.get(), options);
    ExpectOk(server->Start());
    return server;
  }

  Client ConnectTo(const TixServer& server) {
    return Unwrap(Client::Connect("127.0.0.1", server.port()));
  }

  TempDir dir_;
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<index::InvertedIndex> index_;
};

TEST_F(ServerTest, PingAndStats) {
  auto server = StartServer();
  Client client = ConnectTo(*server);
  ExpectOk(client.Ping());
  const std::string json = Unwrap(client.Stats());
  for (const char* key :
       {"\"server\":", "\"result_cache\":", "\"block_cache\":", "\"work\":",
        "\"queries\":", "\"hits\":", "\"connections_accepted\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

TEST_F(ServerTest, QueryMatchesDirectEngineByteForByte) {
  auto server = StartServer();
  Client client = ConnectTo(*server);
  for (const std::string& query : Queries()) {
    EXPECT_EQ(Unwrap(client.Query(query)), DirectAnswer(query)) << query;
  }
}

TEST_F(ServerTest, CacheHitIsByteIdenticalToMiss) {
  auto server = StartServer();
  Client client = ConnectTo(*server);
  for (const std::string& query : Queries()) {
    const std::string miss = Unwrap(client.Query(query));
    const std::string hit = Unwrap(client.Query(query));
    EXPECT_EQ(miss, hit);
  }
  const ResultCacheStats stats = server->result_cache().Stats();
  EXPECT_EQ(stats.misses, Queries().size());
  EXPECT_EQ(stats.hits, Queries().size());
}

TEST_F(ServerTest, NormalizationCollapsesSpellingsToOneEntry) {
  auto server = StartServer();
  Client client = ConnectTo(*server);
  const std::string spelled_one =
      R"(FOR $a IN document("article0.xml")//article//*
         SCORE $a USING foo({"xhot"}) THRESHOLD STOP AFTER 5 RETURN $a)";
  const std::string spelled_two =
      "for $a in document(\"article0.xml\")//article//* "
      "score $a using foo({\"xhot\"}) threshold stop after 5 return $a";
  const std::string first = Unwrap(client.Query(spelled_one));
  const std::string second = Unwrap(client.Query(spelled_two));
  EXPECT_EQ(first, second);
  const ResultCacheStats stats = server->result_cache().Stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST_F(ServerTest, ParseErrorsComeBackAsStatus) {
  auto server = StartServer();
  Client client = ConnectTo(*server);
  const Status status = client.Query("THIS IS NOT A QUERY").status();
  EXPECT_FALSE(status.ok());
  // The session survives an error and keeps serving.
  ExpectOk(client.Ping());
  EXPECT_EQ(server->Stats().queries_error, 1u);
}

TEST_F(ServerTest, ExplainBypassesCacheAndCarriesPlan) {
  auto server = StartServer();
  Client client = ConnectTo(*server);
  const std::string query = Queries()[0];
  const std::string explained = Unwrap(client.QueryExplain(query));
  EXPECT_NE(explained.find("TermJoin"), std::string::npos) << explained;
  // EXPLAIN neither populated nor consulted the cache.
  EXPECT_EQ(server->result_cache().Stats().entries, 0u);
  const std::string plain = Unwrap(client.Query(query));
  EXPECT_EQ(plain, DirectAnswer(query));
}

TEST_F(ServerTest, ConcurrentDistinctQueriesMatchSerialRuns) {
  // Serial ground truth first (direct engine), then N sessions run the
  // same queries concurrently against one server with caching off (so
  // every execution is a real one). Byte-identical responses required.
  const std::vector<std::string> queries = Queries();
  std::vector<std::string> expected;
  expected.reserve(queries.size());
  for (const std::string& query : queries) {
    expected.push_back(DirectAnswer(query));
  }

  ServerOptions options;
  options.session_threads = 4;
  options.max_inflight = 4;
  options.result_cache_bytes = 0;
  auto server = StartServer(options);

  constexpr int kRounds = 5;
  std::vector<std::thread> sessions;
  std::atomic<int> failures{0};
  for (size_t i = 0; i < queries.size(); ++i) {
    sessions.emplace_back([&, i] {
      Client client = Unwrap(Client::Connect("127.0.0.1", server->port()));
      for (int round = 0; round < kRounds; ++round) {
        const auto response = client.Query(queries[i]);
        if (!response.ok() || response.value() != expected[i]) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& session : sessions) session.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ServerTest, ConcurrentSameQueryHammerIsConsistent) {
  // Many sessions race the same query through the cache miss/insert/hit
  // path; every response must be byte-identical to the direct answer.
  const std::string query = Queries()[0];
  const std::string expected = DirectAnswer(query);
  auto server = StartServer();

  constexpr int kSessions = 8;
  constexpr int kRounds = 10;
  std::vector<std::thread> sessions;
  std::atomic<int> failures{0};
  for (int i = 0; i < kSessions; ++i) {
    sessions.emplace_back([&] {
      Client client = Unwrap(Client::Connect("127.0.0.1", server->port()));
      for (int round = 0; round < kRounds; ++round) {
        const auto response = client.Query(query);
        if (!response.ok() || response.value() != expected) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& session : sessions) session.join();
  EXPECT_EQ(failures.load(), 0);
  const ResultCacheStats stats = server->result_cache().Stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kSessions * kRounds));
  EXPECT_GE(stats.hits, static_cast<uint64_t>(kSessions * kRounds - kSessions));
}

TEST_F(ServerTest, AdmissionRejectsWhenSaturated) {
  // One execution slot, zero queue depth: while query A holds the slot
  // (blocked on a latch in the test hook), query B must be rejected
  // immediately with ResourceExhausted — fast rejection, not collapse.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool entered = false;

  ServerOptions options;
  options.session_threads = 2;
  options.max_inflight = 1;
  options.admission_queue = 0;
  options.result_cache_bytes = 0;
  options.test_query_hook = [&](const std::string&) {
    std::unique_lock<std::mutex> lock(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  auto server = StartServer(options);

  Client blocked = ConnectTo(*server);
  std::thread holder([&] {
    // Holds the only slot until released.
    EXPECT_TRUE(blocked.Query(Queries()[0]).ok());
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }

  Client rejected = ConnectTo(*server);
  const Status status = rejected.Query(Queries()[1]).status();
  EXPECT_TRUE(status.IsResourceExhausted()) << status.ToString();

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  holder.join();
  EXPECT_EQ(server->Stats().queries_rejected, 1u);
  EXPECT_EQ(server->Stats().queries_ok, 1u);
}

TEST_F(ServerTest, AdmissionQueueAdmitsAfterSlotFrees) {
  // With queue depth 1 and a generous wait, the second query parks and
  // then runs once the first releases the slot.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  int entered = 0;

  ServerOptions options;
  options.session_threads = 2;
  options.max_inflight = 1;
  options.admission_queue = 1;
  options.admission_wait_ms = 10000;
  options.result_cache_bytes = 0;
  options.test_query_hook = [&](const std::string&) {
    std::unique_lock<std::mutex> lock(mu);
    if (++entered > 1) return;  // only the first query blocks
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  auto server = StartServer(options);

  Client first = ConnectTo(*server);
  std::thread holder([&] { EXPECT_TRUE(first.Query(Queries()[0]).ok()); });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered >= 1; });
  }

  Client second = ConnectTo(*server);
  std::thread waiter([&] {
    // Parks in the admission queue, then succeeds.
    EXPECT_TRUE(second.Query(Queries()[1]).ok());
  });
  // Give the waiter a moment to reach the queue, then open the gate.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  holder.join();
  waiter.join();
  EXPECT_EQ(server->Stats().queries_ok, 2u);
  EXPECT_EQ(server->Stats().queries_rejected, 0u);
}

TEST_F(ServerTest, QueryTimeoutFires) {
  // The deadline clock starts at admission; the hook burns the whole
  // 5 ms budget before execution begins, so the engine's first deadline
  // check trips deterministically.
  ServerOptions options;
  options.query_timeout_ms = 5;
  options.result_cache_bytes = 0;
  options.test_query_hook = [](const std::string&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  };
  auto server = StartServer(options);
  Client client = ConnectTo(*server);
  const Status status = client.Query(Queries()[0]).status();
  EXPECT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
  EXPECT_EQ(server->Stats().queries_timeout, 1u);
  // The session is still healthy after a timeout.
  ExpectOk(client.Ping());
}

TEST_F(ServerTest, SessionLimitRejectsExtraConnections) {
  ServerOptions options;
  options.session_threads = 1;
  options.max_sessions = 1;
  auto server = StartServer(options);

  Client first = ConnectTo(*server);
  ExpectOk(first.Ping());  // session fully established
  Client second = ConnectTo(*server);
  const Status status = second.Ping();
  EXPECT_TRUE(status.IsResourceExhausted()) << status.ToString();
  EXPECT_EQ(server->Stats().connections_rejected, 1u);
  // The original session keeps working.
  ExpectOk(first.Ping());
}

TEST_F(ServerTest, GracefulStopWithLiveSessions) {
  auto server = StartServer();
  Client client = ConnectTo(*server);
  ExpectOk(client.Ping());
  server->Stop();
  EXPECT_FALSE(server->running());
  // The client's next request fails cleanly rather than hanging.
  EXPECT_FALSE(client.Ping().ok());
  // And new connections are refused or immediately closed.
  auto reconnect = Client::Connect("127.0.0.1", server->port());
  if (reconnect.ok()) {
    EXPECT_FALSE(reconnect.value().Ping().ok());
  }
}

TEST_F(ServerTest, ClientShutdownRequestIsAcknowledged) {
  auto server = StartServer();
  Client client = ConnectTo(*server);
  ExpectOk(client.RequestShutdown());
  // The daemon main loop observes the request and performs the stop.
  EXPECT_TRUE(server->WaitForShutdownRequest());
  server->Stop();
  EXPECT_FALSE(server->running());
}

TEST_F(ServerTest, WorkCountersRollUpAcrossSessions) {
  ServerOptions options;
  options.result_cache_bytes = 0;
  auto server = StartServer(options);
  Client client = ConnectTo(*server);
  Unwrap(client.Query(Queries()[0]));
  Unwrap(client.Query(Queries()[1]));
  // Real executions fetch records and look up index terms; the server
  // root context must have accumulated that session work.
  EXPECT_GT(server->WorkCounter(obs::Counter::kIndexLookups), 0u);
  EXPECT_GT(server->WorkCounter(obs::Counter::kRecordFetches), 0u);
}

}  // namespace
}  // namespace tix::server
