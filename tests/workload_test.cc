// Workload generator tests: structural shape, vocabulary distribution,
// determinism edge cases, and the exactness guarantees the benchmarks
// rely on.

#include <map>

#include <gtest/gtest.h>

#include "index/inverted_index.h"
#include "tests/test_util.h"
#include "workload/corpus.h"

namespace tix::workload {
namespace {

using testing::ExpectOk;
using testing::MakeTestDatabase;
using testing::TempDir;
using testing::Unwrap;

TEST(CorpusTest, StructureRespectsRanges) {
  TempDir dir;
  auto db = MakeTestDatabase(dir.path(), 256);
  CorpusOptions options;
  options.num_articles = 25;
  options.min_sections = 3;
  options.max_sections = 3;
  options.min_paragraphs = 4;
  options.max_paragraphs = 4;
  const auto corpus = Unwrap(GenerateCorpus(db.get(), options));
  EXPECT_EQ(corpus.num_articles, 25u);

  const auto* sections = db->ElementsWithTag(db->LookupTag("sec"));
  ASSERT_NE(sections, nullptr);
  EXPECT_EQ(sections->size(), 25u * 3u);
  const auto* paragraphs = db->ElementsWithTag(db->LookupTag("p"));
  ASSERT_NE(paragraphs, nullptr);
  EXPECT_EQ(paragraphs->size(), 25u * 3u * 4u);
  // Each section has exactly st + 4 p = 5 children.
  for (storage::NodeId section : *sections) {
    EXPECT_EQ(db->ChildCountFromIndex(section), 5u);
  }
}

TEST(CorpusTest, ZipfVocabularySkew) {
  TempDir dir;
  auto db = MakeTestDatabase(dir.path(), 256);
  CorpusOptions options;
  options.num_articles = 30;
  options.vocabulary_size = 1000;
  options.zipf_theta = 1.0;
  Unwrap(GenerateCorpus(db.get(), options));
  index::InvertedIndex index = Unwrap(index::InvertedIndex::Build(db.get()));
  // Rank-0 word is much more frequent than rank-100.
  EXPECT_GT(index.TermFrequency(VocabWord(0)),
            5 * index.TermFrequency(VocabWord(100)) + 1);
}

TEST(CorpusTest, WordCountMatchesDatabase) {
  TempDir dir;
  auto db = MakeTestDatabase(dir.path(), 256);
  CorpusOptions options;
  options.num_articles = 10;
  const auto corpus = Unwrap(GenerateCorpus(db.get(), options));
  uint64_t db_words = 0;
  for (const auto& doc : db->documents()) db_words += doc.word_count;
  // Author names / review text are outside the slot pool, so the
  // database has at least the slot words.
  EXPECT_GE(db_words, corpus.num_words);
  EXPECT_EQ(corpus.num_elements, db->num_nodes());
}

TEST(CorpusTest, PhraseCoOccurrencesAreExactlyPlanted) {
  TempDir dir;
  auto db = MakeTestDatabase(dir.path(), 512);
  CorpusOptions options;
  options.num_articles = 25;
  options.planted_phrases = {{"xaa", "xbb", 120, 80, 33},
                             {"xcc", "xdd", 40, 40, 40}};
  Unwrap(GenerateCorpus(db.get(), options));
  index::InvertedIndex index = Unwrap(index::InvertedIndex::Build(db.get()));
  // Count adjacencies directly from (decoded) postings.
  auto count_pairs = [&](const char* t1, const char* t2) {
    const std::vector<index::Posting> p1 = index.Lookup(t1)->DecodeAll();
    const std::vector<index::Posting> p2 = index.Lookup(t2)->DecodeAll();
    uint64_t pairs = 0;
    size_t j = 0;
    for (const auto& posting : p1) {
      while (j < p2.size() &&
             (p2[j].doc_id < posting.doc_id ||
              (p2[j].doc_id == posting.doc_id &&
               p2[j].word_pos < posting.word_pos + 1))) {
        ++j;
      }
      if (j < p2.size() && p2[j].doc_id == posting.doc_id &&
          p2[j].word_pos == posting.word_pos + 1 &&
          p2[j].node_id == posting.node_id) {
        ++pairs;
      }
    }
    return pairs;
  };
  EXPECT_EQ(count_pairs("xaa", "xbb"), 33u);
  EXPECT_EQ(count_pairs("xcc", "xdd"), 40u);
  EXPECT_EQ(index.TermFrequency("xaa"), 120u);
  EXPECT_EQ(index.TermFrequency("xdd"), 40u);
}

TEST(CorpusTest, InvalidPhraseSpecRejected) {
  TempDir dir;
  auto db = MakeTestDatabase(dir.path(), 256);
  CorpusOptions options;
  options.num_articles = 5;
  options.planted_phrases = {{"xa", "xb", 10, 10, 11}};  // co > freq
  EXPECT_TRUE(GenerateCorpus(db.get(), options).status().IsInvalidArgument());
  options.planted_phrases.clear();
  options.num_articles = 0;
  EXPECT_TRUE(GenerateCorpus(db.get(), options).status().IsInvalidArgument());
}

TEST(CorpusTest, ReviewsShareTitlesWithArticles) {
  TempDir dir;
  auto db = MakeTestDatabase(dir.path(), 256);
  CorpusOptions options;
  options.num_articles = 10;
  options.generate_reviews = true;
  options.num_reviews = 15;
  const auto corpus = Unwrap(GenerateCorpus(db.get(), options));
  ASSERT_NE(corpus.reviews_doc, UINT32_MAX);
  const auto* reviews = db->ElementsWithTag(db->LookupTag("review"));
  ASSERT_NE(reviews, nullptr);
  EXPECT_EQ(reviews->size(), 15u);
  // Every review title equals some article title verbatim.
  const auto* titles = db->ElementsWithTag(db->LookupTag("atl"));
  std::map<std::string, int> title_texts;
  for (storage::NodeId title : *titles) {
    ++title_texts[Unwrap(db->AllTextOf(title))];
  }
  const auto* review_titles = db->ElementsWithTag(db->LookupTag("title"));
  ASSERT_NE(review_titles, nullptr);
  for (storage::NodeId title : *review_titles) {
    EXPECT_EQ(title_texts.count(Unwrap(db->AllTextOf(title))), 1u);
  }
}

TEST(CorpusTest, SurnamePoolLeadsWithDoe) {
  EXPECT_EQ(SurnamePool()[0], "doe");
  EXPECT_GE(SurnamePool().size(), 10u);
}

}  // namespace
}  // namespace tix::workload
