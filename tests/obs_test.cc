// Per-query observability: MetricsContext charging/chaining, the
// OperatorSpan tree builder, the EXPLAIN renderers, the engine's plan
// output, and — the regression this layer exists for — two queries
// running concurrently each seeing exactly their own storage costs.

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/obs.h"
#include "index/inverted_index.h"
#include "query/engine.h"
#include "tests/test_util.h"
#include "workload/paper_example.h"

namespace tix::obs {
namespace {

using testing::ExpectOk;
using testing::MakeTestDatabase;
using testing::TempDir;
using testing::Unwrap;

// --------------------------------------------------------- MetricsContext

TEST(MetricsContextTest, AddChargesSelfAndAncestors) {
  MetricsContext grandparent;
  MetricsContext parent(&grandparent);
  MetricsContext child(&parent);

  child.Add(Counter::kRecordFetches, 3);
  parent.Add(Counter::kRecordFetches, 2);
  grandparent.Add(Counter::kBlobReads, 1);

  EXPECT_EQ(child.value(Counter::kRecordFetches), 3u);
  EXPECT_EQ(parent.value(Counter::kRecordFetches), 5u);
  EXPECT_EQ(grandparent.value(Counter::kRecordFetches), 5u);
  EXPECT_EQ(child.value(Counter::kBlobReads), 0u);
  EXPECT_EQ(grandparent.value(Counter::kBlobReads), 1u);
}

TEST(MetricsContextTest, CountIsNoOpWithoutContext) {
  ASSERT_EQ(CurrentMetrics(), nullptr);
  Count(Counter::kRecordFetches);  // must not crash
  EXPECT_EQ(CurrentMetrics(), nullptr);
}

TEST(MetricsContextTest, ScopedMetricsInstallsAndRestores) {
  MetricsContext outer;
  MetricsContext inner;
  ASSERT_EQ(CurrentMetrics(), nullptr);
  {
    ScopedMetrics outer_scope(&outer);
    EXPECT_EQ(CurrentMetrics(), &outer);
    Count(Counter::kIndexLookups, 2);
    {
      ScopedMetrics inner_scope(&inner);
      EXPECT_EQ(CurrentMetrics(), &inner);
      Count(Counter::kIndexLookups);
    }
    EXPECT_EQ(CurrentMetrics(), &outer);
  }
  EXPECT_EQ(CurrentMetrics(), nullptr);
  // `inner` was not parented to `outer`, so its count stays local.
  EXPECT_EQ(outer.value(Counter::kIndexLookups), 2u);
  EXPECT_EQ(inner.value(Counter::kIndexLookups), 1u);
}

TEST(MetricsContextTest, ConcurrentChargesToOneContext) {
  MetricsContext shared;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&shared] {
      ScopedMetrics scope(&shared);
      for (int i = 0; i < kPerThread; ++i) Count(Counter::kRecordFetches);
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(shared.value(Counter::kRecordFetches),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsContextTest, CounterNamesAreStable) {
  EXPECT_STREQ(CounterName(Counter::kRecordFetches), "record_fetches");
  EXPECT_STREQ(CounterName(Counter::kBlobReads), "blob_reads");
  EXPECT_STREQ(CounterName(Counter::kTextBytesRead), "text_bytes_read");
  EXPECT_STREQ(CounterName(Counter::kIndexLookups), "index_lookups");
}

// ----------------------------------------------------------- OperatorSpan

TEST(OperatorSpanTest, DisabledSpanIsInert) {
  OperatorSpan span(nullptr, "TermJoin");
  EXPECT_FALSE(span.enabled());
  EXPECT_EQ(span.context(), nullptr);
  EXPECT_EQ(span.mutable_node(), nullptr);
  span.set_rows(7);
  span.SetCounter("whatever", 1);
  EXPECT_EQ(span.Finish(), nullptr);
  EXPECT_EQ(CurrentMetrics(), nullptr);
}

TEST(OperatorSpanTest, BuildsTreeWithCountersAndTime) {
  OperatorMetrics root;
  root.name = "Query";
  {
    OperatorSpan join_span(&root, "TermJoin", "plain");
    Count(Counter::kRecordFetches, 10);
    Count(Counter::kTextBytesRead, 256);
    join_span.set_rows(42);
    join_span.SetCounter("stack_pushes", 5);
  }
  {
    OperatorSpan threshold_span(&root, "Threshold");
    threshold_span.set_rows(3);
  }
  ASSERT_EQ(root.children.size(), 2u);
  const OperatorMetrics& join = root.children[0];
  EXPECT_EQ(join.name, "TermJoin");
  EXPECT_EQ(join.detail, "plain");
  EXPECT_EQ(join.rows, 42u);
  EXPECT_GE(join.seconds, 0.0);
  EXPECT_EQ(join.GetCounter("record_fetches"), 10u);
  EXPECT_EQ(join.GetCounter("text_bytes_read"), 256u);
  EXPECT_EQ(join.GetCounter("stack_pushes"), 5u);
  EXPECT_EQ(join.GetCounter("blob_reads"), 0u);  // zero counters omitted
  EXPECT_EQ(root.children[1].name, "Threshold");
  EXPECT_EQ(root.children[1].rows, 3u);
}

TEST(OperatorSpanTest, NestedSpansRollUpToAncestors) {
  MetricsContext query;
  ScopedMetrics query_scope(&query);
  OperatorMetrics root;
  {
    OperatorSpan outer(&root, "Scope");
    Count(Counter::kRecordFetches, 1);
    {
      OperatorSpan inner(outer.mutable_node(), "SemiJoin");
      Count(Counter::kRecordFetches, 4);
    }
  }
  ASSERT_EQ(root.children.size(), 1u);
  const OperatorMetrics& outer_node = root.children[0];
  ASSERT_EQ(outer_node.children.size(), 1u);
  // Inner work is charged to the inner node, the outer node, and the
  // ambient query context.
  EXPECT_EQ(outer_node.children[0].GetCounter("record_fetches"), 4u);
  EXPECT_EQ(outer_node.GetCounter("record_fetches"), 5u);
  EXPECT_EQ(query.value(Counter::kRecordFetches), 5u);
}

TEST(OperatorMetricsTest, SetCounterOverwrites) {
  OperatorMetrics node;
  node.SetCounter("pushed", 1);
  node.SetCounter("pushed", 9);
  EXPECT_EQ(node.GetCounter("pushed"), 9u);
  EXPECT_EQ(node.counters.size(), 1u);
  EXPECT_EQ(node.GetCounter("absent"), 0u);
}

// -------------------------------------------------------------- Renderers

OperatorMetrics SampleTree() {
  OperatorMetrics root;
  root.name = "Query";
  root.detail = "select";
  root.seconds = 0.25;
  root.rows = 3;
  root.SetCounter("record_fetches", 12);
  OperatorMetrics child;
  child.name = "TermJoin";
  child.detail = "threads=2";
  child.rows = 40;
  root.AddChild(std::move(child));
  return root;
}

TEST(RenderTest, TextContainsTreeStructure) {
  const std::string text = RenderText(SampleTree());
  EXPECT_NE(text.find("Query (select)"), std::string::npos);
  EXPECT_NE(text.find("rows=3"), std::string::npos);
  EXPECT_NE(text.find("record_fetches=12"), std::string::npos);
  EXPECT_NE(text.find("TermJoin (threads=2)"), std::string::npos);
}

TEST(RenderTest, JsonHasDocumentedSchema) {
  const std::string json = RenderJson(SampleTree());
  EXPECT_NE(json.find("\"name\": \"Query\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\": \"select\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"record_fetches\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"children\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"TermJoin\""), std::string::npos);
}

// ------------------------------------------------------------ Engine plan

class EnginePlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTestDatabase(dir_.path());
    ExpectOk(workload::LoadPaperExample(db_.get()));
    index_ = std::make_unique<index::InvertedIndex>(
        Unwrap(index::InvertedIndex::Build(db_.get())));
  }

  query::QueryOutput Run(const std::string& text,
                         query::EngineOptions options = {}) {
    query::QueryEngine engine(db_.get(), index_.get(), options);
    return Unwrap(engine.ExecuteText(text));
  }

  static const OperatorMetrics* FindNode(const OperatorMetrics& root,
                                         const std::string& name) {
    if (root.name == name) return &root;
    for (const OperatorMetrics& child : root.children) {
      if (const OperatorMetrics* found = FindNode(child, name)) return found;
    }
    return nullptr;
  }

  TempDir dir_;
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<index::InvertedIndex> index_;
};

constexpr char kScoredQuery[] = R"(
    FOR $a IN document("articles.xml")//article//*
    SCORE $a USING foo({"search engine"},
                       {"internet", "information retrieval"})
    THRESHOLD STOP AFTER 3
    RETURN $a)";

TEST_F(EnginePlanTest, NoPlanByDefault) {
  const query::QueryOutput output = Run(kScoredQuery);
  EXPECT_FALSE(output.plan.has_value());
}

TEST_F(EnginePlanTest, ScoredQueryPlanTree) {
  query::EngineOptions options;
  options.collect_metrics = true;
  const query::QueryOutput output = Run(kScoredQuery, options);
  ASSERT_TRUE(output.plan.has_value());
  const OperatorMetrics& plan = *output.plan;
  EXPECT_EQ(plan.name, "Query");
  EXPECT_EQ(plan.detail, "select");
  EXPECT_EQ(plan.rows, output.stats.returned);
  EXPECT_GT(plan.seconds, 0.0);
  // The root rolls up every storage fetch of the whole execution.
  EXPECT_GT(plan.GetCounter("record_fetches"), 0u);

  ASSERT_NE(FindNode(plan, "StructuralMatch"), nullptr);
  const OperatorMetrics* join = FindNode(plan, "TermJoin");
  ASSERT_NE(join, nullptr);
  EXPECT_GT(join->rows, 0u);
  const OperatorMetrics* threshold = FindNode(plan, "Threshold");
  ASSERT_NE(threshold, nullptr);
  EXPECT_EQ(threshold->rows, 3u);
  EXPECT_GT(threshold->GetCounter("pushed"), 0u);
  // Operator counters are a partition of (at most) the root's rollup.
  EXPECT_LE(join->GetCounter("record_fetches"),
            plan.GetCounter("record_fetches"));
}

TEST_F(EnginePlanTest, ParallelPlanHasPartitionChildren) {
  query::EngineOptions options;
  options.collect_metrics = true;
  options.num_threads = 2;
  const query::QueryOutput output = Run(kScoredQuery, options);
  ASSERT_TRUE(output.plan.has_value());
  const OperatorMetrics* join = FindNode(*output.plan, "ParallelTermJoin");
  ASSERT_NE(join, nullptr);
  EXPECT_NE(join->detail.find("threads=2"), std::string::npos);
  ASSERT_FALSE(join->children.empty());
  uint64_t partition_fetches = 0;
  for (const OperatorMetrics& partition : join->children) {
    EXPECT_EQ(partition.name, "TermJoin");
    EXPECT_NE(partition.detail.find("partition"), std::string::npos);
    partition_fetches += partition.GetCounter("record_fetches");
  }
  // Partition counts are exact and sum to the operator's own count.
  EXPECT_EQ(partition_fetches, join->GetCounter("record_fetches"));
}

TEST_F(EnginePlanTest, CollectingMetricsDoesNotChangeResults) {
  const query::QueryOutput plain = Run(kScoredQuery);
  query::EngineOptions options;
  options.collect_metrics = true;
  const query::QueryOutput collected = Run(kScoredQuery, options);
  ASSERT_EQ(plain.results.size(), collected.results.size());
  for (size_t i = 0; i < plain.results.size(); ++i) {
    EXPECT_EQ(plain.results[i].node, collected.results[i].node);
    EXPECT_DOUBLE_EQ(plain.results[i].score, collected.results[i].score);
  }
  EXPECT_EQ(plain.stats.anchors, collected.stats.anchors);
  EXPECT_EQ(plain.stats.scored_elements, collected.stats.scored_elements);
}

// ------------------------------------------- concurrent-query regression

// The bug this layer fixes: operator stats were computed by diffing a
// process-global counter, so two overlapping queries charged each other
// for their record fetches. With per-query contexts, each concurrent
// run must report exactly the counts of its serial run.
TEST_F(EnginePlanTest, ConcurrentQueriesSeeOnlyTheirOwnFetches) {
  const std::vector<std::string> queries = {
      kScoredQuery,
      R"(FOR $a IN document("articles.xml")//article//*
         SCORE $a USING bm25({"xml"}, {"database", "query"})
         THRESHOLD STOP AFTER 5
         RETURN $a)",
  };

  query::EngineOptions options;
  options.collect_metrics = true;

  std::vector<uint64_t> serial_fetches;
  std::vector<size_t> serial_results;
  for (const std::string& text : queries) {
    const query::QueryOutput output = Run(text, options);
    ASSERT_TRUE(output.plan.has_value());
    serial_fetches.push_back(output.plan->GetCounter("record_fetches"));
    serial_results.push_back(output.results.size());
    EXPECT_GT(serial_fetches.back(), 0u);
  }
  // Distinct costs, so cross-contamination cannot cancel out.
  ASSERT_NE(serial_fetches[0], serial_fetches[1]);

  constexpr int kIterations = 8;
  std::vector<std::thread> workers;
  std::vector<std::string> failures(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    workers.emplace_back([&, q] {
      query::QueryEngine engine(db_.get(), index_.get(), options);
      for (int i = 0; i < kIterations; ++i) {
        auto result = engine.ExecuteText(queries[q]);
        if (!result.ok()) {
          failures[q] = result.status().ToString();
          return;
        }
        const query::QueryOutput& output = result.value();
        if (!output.plan.has_value() ||
            output.plan->GetCounter("record_fetches") != serial_fetches[q] ||
            output.results.size() != serial_results[q]) {
          failures[q] = "query " + std::to_string(q) + " iteration " +
                        std::to_string(i) + ": got " +
                        std::to_string(output.plan.has_value()
                                           ? output.plan->GetCounter(
                                                 "record_fetches")
                                           : 0) +
                        " fetches, want " +
                        std::to_string(serial_fetches[q]);
          return;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (const std::string& failure : failures) {
    EXPECT_TRUE(failure.empty()) << failure;
  }
}

}  // namespace
}  // namespace tix::obs
